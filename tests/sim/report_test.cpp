#include "src/sim/report.h"

#include <gtest/gtest.h>

namespace cloudcache {
namespace {

SimMetrics MakeMetrics(const char* name, double mean_response,
                       double cost) {
  SimMetrics m;
  m.scheme_name = name;
  for (int i = 0; i < 10; ++i) {
    m.response_seconds.Add(mean_response);
    m.response_hist.Add(mean_response);
  }
  m.operating_cost.cpu_dollars = cost / 2;
  m.operating_cost.network_dollars = cost / 2;
  m.queries = 10;
  m.served = 10;
  m.served_in_cache = 4;
  m.served_in_backend = 6;
  return m;
}

TEST(ReportTest, ResourceBreakdownTotals) {
  ResourceBreakdown a{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(a.Total(), 10.0);
  ResourceBreakdown b{1, 1, 1, 1};
  a += b;
  EXPECT_DOUBLE_EQ(a.Total(), 14.0);
  EXPECT_DOUBLE_EQ(a.disk_dollars, 4.0);
}

TEST(ReportTest, CacheHitRate) {
  const SimMetrics m = MakeMetrics("x", 1.0, 1.0);
  EXPECT_DOUBLE_EQ(m.CacheHitRate(), 0.4);
  SimMetrics empty;
  EXPECT_DOUBLE_EQ(empty.CacheHitRate(), 0.0);
}

TEST(ReportTest, RunDetailMentionsEverything) {
  const std::string detail = FormatRunDetail(MakeMetrics("econ-x", 2.5, 8));
  EXPECT_NE(detail.find("econ-x"), std::string::npos);
  EXPECT_NE(detail.find("response"), std::string::npos);
  EXPECT_NE(detail.find("operating cost"), std::string::npos);
  EXPECT_NE(detail.find("$8.00"), std::string::npos);
}

TEST(ReportTest, OperatingCostTableShape) {
  const std::vector<double> intervals = {1, 10};
  std::vector<std::vector<SimMetrics>> rows = {
      {MakeMetrics("bypass", 1, 100), MakeMetrics("econ-cheap", 1, 55)},
      {MakeMetrics("bypass", 2, 300), MakeMetrics("econ-cheap", 2, 200)},
  };
  TableWriter table = MakeOperatingCostTable(intervals, rows);
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.num_columns(), 3u);
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("bypass"), std::string::npos);
  EXPECT_NE(csv.find("100.00"), std::string::npos);
}

TEST(ReportTest, ResponseTimeTableShape) {
  const std::vector<double> intervals = {1};
  std::vector<std::vector<SimMetrics>> rows = {
      {MakeMetrics("bypass", 4.5, 1)}};
  TableWriter table = MakeResponseTimeTable(intervals, rows);
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("4.500"), std::string::npos);
}

TEST(ReportTest, SummaryTableHasOneRowPerScheme) {
  std::vector<SimMetrics> runs = {MakeMetrics("a", 1, 1),
                                  MakeMetrics("b", 2, 2),
                                  MakeMetrics("c", 3, 3)};
  TableWriter table = MakeSchemeSummaryTable(runs);
  EXPECT_EQ(table.num_rows(), 3u);
  EXPECT_NE(table.ToAscii().find("hit_rate"), std::string::npos);
}

}  // namespace
}  // namespace cloudcache
