#include "src/structure/structure.h"

#include "src/util/logging.h"

namespace cloudcache {

const char* StructureTypeToString(StructureType type) {
  switch (type) {
    case StructureType::kCpuNode:
      return "cpu";
    case StructureType::kColumn:
      return "column";
    case StructureType::kIndex:
      return "index";
  }
  return "?";
}

std::string StructureKey::ToString(const Catalog& catalog) const {
  std::string out = StructureTypeToString(type);
  out += '(';
  switch (type) {
    case StructureType::kCpuNode:
      out += std::to_string(ordinal);
      break;
    case StructureType::kColumn:
      out += catalog.table(table).name + "." +
             catalog.column(columns.front()).name;
      break;
    case StructureType::kIndex: {
      out += catalog.table(table).name + ": ";
      for (size_t i = 0; i < columns.size(); ++i) {
        if (i) out += ',';
        out += catalog.column(columns[i]).name;
      }
      break;
    }
  }
  out += ')';
  return out;
}

StructureKey CpuNodeKey(uint32_t ordinal) {
  StructureKey key;
  key.type = StructureType::kCpuNode;
  key.ordinal = ordinal;
  return key;
}

StructureKey ColumnKey(const Catalog& catalog, ColumnId column) {
  StructureKey key;
  key.type = StructureType::kColumn;
  key.table = catalog.column(column).table_id;
  key.columns = {column};
  return key;
}

StructureKey IndexKey(const Catalog& catalog,
                      std::vector<ColumnId> columns) {
  CLOUDCACHE_CHECK(!columns.empty());
  StructureKey key;
  key.type = StructureType::kIndex;
  key.table = catalog.column(columns.front()).table_id;
  key.columns = std::move(columns);
  for (ColumnId col : key.columns) {
    CLOUDCACHE_CHECK_EQ(catalog.column(col).table_id, key.table);
  }
  return key;
}

size_t StructureKeyHash::operator()(const StructureKey& key) const {
  uint64_t h = 0x9e3779b97f4a7c15ull;
  auto mix = [&h](uint64_t value) {
    h ^= value + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(static_cast<uint64_t>(key.type));
  mix(key.table);
  mix(key.ordinal);
  for (ColumnId col : key.columns) mix(col);
  return static_cast<size_t>(h);
}

uint64_t StructureBytes(const Catalog& catalog, const StructureKey& key) {
  switch (key.type) {
    case StructureType::kCpuNode:
      return 0;
    case StructureType::kColumn:
      return catalog.ColumnBytes(key.columns.front());
    case StructureType::kIndex: {
      // Key columns plus an 8-byte row locator per entry.
      uint64_t bytes = catalog.table(key.table).row_count * 8;
      for (ColumnId col : key.columns) bytes += catalog.ColumnBytes(col);
      return bytes;
    }
  }
  return 0;
}

StructureId StructureRegistry::Intern(const StructureKey& key) {
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  const auto id = static_cast<StructureId>(keys_.size());
  keys_.push_back(key);
  bytes_.push_back(StructureBytes(*catalog_, key));
  index_.emplace(keys_.back(), id);
  return id;
}

Result<StructureId> StructureRegistry::Find(const StructureKey& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return Status::NotFound("structure " + key.ToString(*catalog_));
  }
  return it->second;
}

std::vector<StructureId> StructureRegistry::IdsOfType(
    StructureType type) const {
  std::vector<StructureId> ids;
  for (StructureId id = 0; id < keys_.size(); ++id) {
    if (keys_[id].type == type) ids.push_back(id);
  }
  return ids;
}

void StructureRegistry::SaveState(persist::Encoder* enc) const {
  enc->PutU64(keys_.size());
  for (const StructureKey& key : keys_) {
    enc->PutU8(static_cast<uint8_t>(key.type));
    enc->PutU32(key.table);
    enc->PutU64(key.columns.size());
    for (ColumnId col : key.columns) enc->PutU32(col);
    enc->PutU32(key.ordinal);
  }
}

Status StructureRegistry::RestoreState(persist::Decoder* dec) {
  uint64_t count = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&count));
  if (count < keys_.size()) {
    return Status::FailedPrecondition(
        "snapshot registry has fewer structures than this run interned at "
        "construction");
  }
  for (uint64_t i = 0; i < count; ++i) {
    StructureKey key;
    uint8_t type = 0;
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU8(&type));
    if (type > static_cast<uint8_t>(StructureType::kIndex)) {
      return Status::InvalidArgument("corrupt structure type in snapshot");
    }
    key.type = static_cast<StructureType>(type);
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&key.table));
    uint64_t column_count = 0;
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&column_count));
    key.columns.resize(column_count);
    for (ColumnId& col : key.columns) {
      CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&col));
    }
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&key.ordinal));
    if (key.type != StructureType::kCpuNode) {
      if (key.table >= catalog_->num_tables()) {
        return Status::InvalidArgument("snapshot structure references an "
                                       "unknown table");
      }
      for (ColumnId col : key.columns) {
        if (col >= catalog_->num_columns()) {
          return Status::InvalidArgument("snapshot structure references an "
                                         "unknown column");
        }
      }
    }
    if (i < keys_.size()) {
      // Construction-time interning (index candidates, initial CPU nodes)
      // must agree with the snapshot id for id, or every dense-id-indexed
      // array restored after this would be misaligned.
      if (keys_[i] != key) {
        return Status::FailedPrecondition(
            "snapshot structure id " + std::to_string(i) +
            " disagrees with this run's construction-time interning");
      }
    } else {
      const StructureId id = Intern(key);
      if (id != i) {
        return Status::InvalidArgument(
            "snapshot registry contains duplicate structure keys");
      }
    }
  }
  return Status::OK();
}

}  // namespace cloudcache
