#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace cloudcache {

/// Exact monetary amount, stored as a signed 64-bit count of micro-dollars
/// (1e-6 USD).
///
/// All account arithmetic in the economy (credit `CR`, regret, profit,
/// amortized charges) is integral so that a simulation of millions of
/// queries accumulates zero floating-point drift and runs are bit-exact
/// reproducible. Rates (e.g. $/GB-month) enter as `double` via FromDollars()
/// and are rounded half-away-from-zero once, at the conversion boundary.
///
/// Range: +/- 9.2 trillion dollars; far beyond anything a cloud account
/// touches, so overflow is a programming error and checked only in debug.
class Money {
 public:
  /// Zero dollars.
  constexpr Money() = default;

  /// Exact construction from a micro-dollar count.
  static constexpr Money FromMicros(int64_t micros) { return Money(micros); }

  /// Construction from dollars, rounded half-away-from-zero to the nearest
  /// micro-dollar.
  static Money FromDollars(double dollars);

  /// Exact construction from whole cents.
  static constexpr Money FromCents(int64_t cents) {
    return Money(cents * 10'000);
  }

  /// The stored micro-dollar count.
  constexpr int64_t micros() const { return micros_; }

  /// Value in dollars (lossy; for reporting only).
  constexpr double ToDollars() const {
    return static_cast<double>(micros_) / 1e6;
  }

  /// True iff the amount is exactly zero.
  constexpr bool IsZero() const { return micros_ == 0; }
  /// True iff the amount is strictly positive.
  constexpr bool IsPositive() const { return micros_ > 0; }
  /// True iff the amount is strictly negative.
  constexpr bool IsNegative() const { return micros_ < 0; }

  /// Renders as e.g. "$12.345678" (micro-dollar precision, trailing zeros
  /// trimmed to cents).
  std::string ToString() const;

  constexpr Money operator-() const { return Money(-micros_); }
  constexpr Money operator+(Money other) const {
    return Money(micros_ + other.micros_);
  }
  constexpr Money operator-(Money other) const {
    return Money(micros_ - other.micros_);
  }
  constexpr Money& operator+=(Money other) {
    micros_ += other.micros_;
    return *this;
  }
  constexpr Money& operator-=(Money other) {
    micros_ -= other.micros_;
    return *this;
  }

  /// Integer scaling (e.g. n queries x per-query charge).
  constexpr Money operator*(int64_t factor) const {
    return Money(micros_ * factor);
  }
  /// Disambiguates Money * <int literal> (would otherwise tie between the
  /// int64_t and double overloads).
  constexpr Money operator*(int factor) const {
    return Money(micros_ * factor);
  }
  /// Fractional scaling, rounded half-away-from-zero.
  Money operator*(double factor) const;
  /// Equal division over n shares, rounded toward zero; the caller is
  /// responsible for distributing the remainder if exactness matters
  /// (see SplitEvenly()).
  constexpr Money operator/(int64_t divisor) const {
    return Money(micros_ / divisor);
  }
  /// Ratio of two amounts as a double (for thresholds such as Eq. 3).
  constexpr double Ratio(Money denominator) const {
    return static_cast<double>(micros_) /
           static_cast<double>(denominator.micros_);
  }

  constexpr bool operator==(Money other) const {
    return micros_ == other.micros_;
  }
  constexpr bool operator!=(Money other) const {
    return micros_ != other.micros_;
  }
  constexpr bool operator<(Money other) const {
    return micros_ < other.micros_;
  }
  constexpr bool operator<=(Money other) const {
    return micros_ <= other.micros_;
  }
  constexpr bool operator>(Money other) const {
    return micros_ > other.micros_;
  }
  constexpr bool operator>=(Money other) const {
    return micros_ >= other.micros_;
  }

  /// Returns the larger of a and b.
  static constexpr Money Max(Money a, Money b) { return a < b ? b : a; }
  /// Returns the smaller of a and b.
  static constexpr Money Min(Money a, Money b) { return a < b ? a : b; }

 private:
  constexpr explicit Money(int64_t micros) : micros_(micros) {}

  int64_t micros_ = 0;
};

std::ostream& operator<<(std::ostream& os, Money money);

/// The first `count` shares of `total` split evenly: every share is
/// total/count rounded down, except the first `total % count` shares which
/// carry one extra micro-dollar. The shares always sum exactly to `total`.
/// `count` must be >= 1. Used by the amortizer (Eq. 7) so that amortized
/// build cost is repaid to the account without residue.
Money EvenShare(Money total, int64_t count, int64_t share_index);

}  // namespace cloudcache
