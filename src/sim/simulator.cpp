#include "src/sim/simulator.h"

#include "src/util/logging.h"

namespace cloudcache {

Simulator::Simulator(const Catalog* catalog, Scheme* scheme,
                     WorkloadGenerator* workload, SimulatorOptions options)
    : catalog_(catalog),
      scheme_(scheme),
      workload_(workload),
      options_(options),
      metered_model_(catalog, &options_.metered_prices) {}

void Simulator::MeterRent(SimTime now, SimMetrics* metrics) {
  const double dt = now - last_meter_time_;
  if (dt <= 0) return;
  last_meter_time_ = now;
  const PriceList& p = options_.metered_prices;
  const CacheState& cache = scheme_->cache();

  // Rent is metered in double dollars: per-interval amounts on small
  // configurations can be far below one micro-dollar, and rounding each
  // interval through Money would silently zero them out.
  const double disk_dollars = static_cast<double>(cache.resident_bytes()) *
                              dt * p.disk_byte_second_dollars;
  const double reservation_dollars =
      static_cast<double>(cache.extra_cpu_nodes()) * dt *
      p.cpu_second_dollars * p.cpu_reserve_fraction;
  metrics->operating_cost.disk_dollars += disk_dollars;
  metrics->operating_cost.cpu_dollars += reservation_dollars;
  // The account charge accumulates fractional micro-dollars and releases
  // them once they round to something chargeable.
  pending_rent_dollars_ += disk_dollars + reservation_dollars;
  const Money charge = Money::FromDollars(pending_rent_dollars_);
  if (!charge.IsZero()) {
    pending_rent_dollars_ -= charge.ToDollars();
    scheme_->ChargeExpenditure(charge, now);
  }
}

void Simulator::MeterQuery(const Query& query, const ServedQuery& served,
                           SimTime now, SimMetrics* metrics) {
  const PriceList& p = options_.metered_prices;
  ResourceBreakdown bill;
  Money charged;

  if (served.served) {
    // Re-price the executed plan's raw resource usage at metered rates.
    // The estimate stored in `served` was computed under the scheme's own
    // price list, but its physical quantities (seconds, ops, bytes) are
    // price-independent.
    const ExecutionEstimate metered =
        metered_model_.EstimateExecution(query, served.spec);
    bill.cpu_dollars += p.CpuCost(metered.cpu_seconds).ToDollars();
    bill.io_dollars += p.IoCost(metered.io_ops).ToDollars();
    bill.network_dollars += p.NetworkCost(metered.wan_bytes).ToDollars();
    charged += p.CpuCost(metered.cpu_seconds) + p.IoCost(metered.io_ops) +
               p.NetworkCost(metered.wan_bytes);
    metrics->wan_bytes += metered.wan_bytes;
  }

  // Builds triggered by this query.
  const BuildUsage& usage = served.build_usage;
  if (usage.cpu_seconds > 0 || usage.wan_bytes > 0 || usage.io_ops > 0) {
    bill.cpu_dollars += p.CpuCost(usage.cpu_seconds).ToDollars();
    bill.network_dollars += p.NetworkCost(usage.wan_bytes).ToDollars();
    bill.io_dollars += p.IoCost(usage.io_ops).ToDollars();
    metrics->wan_bytes += usage.wan_bytes;
    // Build spending was already withdrawn from the scheme's account as an
    // investment (economy schemes), so it is not re-charged there; it is
    // still part of the metered operating cost.
  }
  metrics->operating_cost += bill;
  if (!charged.IsZero()) scheme_->ChargeExpenditure(charged, now);
}

SimMetrics Simulator::Run() {
  SimMetrics metrics;
  metrics.scheme_name = scheme_->name();
  last_meter_time_ = workload_->PeekNextArrival();

  // Single-stream discipline: the paper serves queries one at a time in
  // arrival order, so the generator IS the schedule and the loop needs no
  // event queue — queries are processed directly as they are drawn.
  // EventQueue (src/sim/event_queue.h) stays in the library for future
  // multi-stream work (overlapping builds, concurrent users); when that
  // lands, arrivals and completions become queued events again.
  for (uint64_t i = 0; i < options_.num_queries; ++i) {
    Query query = workload_->Next();
    const SimTime now = query.arrival_time;

    MeterRent(now, &metrics);
    const ServedQuery served = scheme_->OnQuery(query, now);
    MeterQuery(query, served, now, &metrics);

    ++metrics.queries;
    if (served.served) {
      ++metrics.served;
      metrics.response_seconds.Add(served.execution.time_seconds);
      metrics.response_sketch.Add(served.execution.time_seconds);
      if (served.spec.access == PlanSpec::Access::kBackend) {
        ++metrics.served_in_backend;
      } else {
        ++metrics.served_in_cache;
      }
      metrics.revenue += served.payment;
      metrics.profit += served.profit;
    }
    metrics.investments += served.investments;
    metrics.evictions += served.evictions;
    if (served.has_budget_case) {
      switch (served.budget_case) {
        case BudgetCase::kCaseA:
          ++metrics.case_a;
          break;
        case BudgetCase::kCaseB:
          ++metrics.case_b;
          break;
        case BudgetCase::kCaseC:
          ++metrics.case_c;
          break;
      }
    }

    if (options_.timeline_stride != 0 &&
        (i % options_.timeline_stride == 0 ||
         i + 1 == options_.num_queries)) {
      metrics.cost_over_time.Add(now, metrics.operating_cost.Total());
      metrics.credit_over_time.Add(now,
                                   scheme_->credit().ToDollars());
    }
  }

  metrics.final_credit = scheme_->credit();
  metrics.final_resident_bytes = scheme_->cache().resident_bytes();
  metrics.final_extra_nodes = scheme_->cache().extra_cpu_nodes();
  return metrics;
}

}  // namespace cloudcache
