#include "src/util/table_writer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace cloudcache {
namespace {

TEST(TableWriterTest, RejectsWrongArity) {
  TableWriter table({"a", "b"});
  EXPECT_FALSE(table.AddRow({"only-one"}).ok());
  EXPECT_TRUE(table.AddRow({"x", "y"}).ok());
  EXPECT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.num_columns(), 2u);
}

TEST(TableWriterTest, AsciiAlignment) {
  TableWriter table({"name", "v"});
  ASSERT_TRUE(table.AddRow({"long-name", "1"}).ok());
  ASSERT_TRUE(table.AddRow({"x", "22"}).ok());
  const std::string ascii = table.ToAscii();
  EXPECT_NE(ascii.find("| name      | v  |"), std::string::npos);
  EXPECT_NE(ascii.find("| long-name | 1  |"), std::string::npos);
  EXPECT_NE(ascii.find("| x         | 22 |"), std::string::npos);
}

TEST(TableWriterTest, CsvPlain) {
  TableWriter table({"a", "b"});
  ASSERT_TRUE(table.AddRow({"1", "2"}).ok());
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\n");
}

TEST(TableWriterTest, CsvEscapesSpecials) {
  TableWriter table({"a"});
  ASSERT_TRUE(table.AddRow({"has,comma"}).ok());
  ASSERT_TRUE(table.AddRow({"has\"quote"}).ok());
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TableWriterTest, DoubleRowFormatting) {
  TableWriter table({"x", "y"});
  ASSERT_TRUE(table.AddNumericRow({1.23456, 2.0}, 2).ok());
  EXPECT_EQ(table.ToCsv(), "x,y\n1.23,2.00\n");
}

TEST(TableWriterTest, WriteCsvFileRoundTrips) {
  TableWriter table({"k"});
  ASSERT_TRUE(table.AddRow({"v"}).ok());
  const std::string path = ::testing::TempDir() + "/table_writer_test.csv";
  ASSERT_TRUE(table.WriteCsvFile(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "k\nv\n");
  std::remove(path.c_str());
}

TEST(TableWriterTest, WriteCsvFileBadPathFails) {
  TableWriter table({"k"});
  EXPECT_FALSE(table.WriteCsvFile("/nonexistent-dir/x.csv").ok());
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace cloudcache
