#!/usr/bin/env python3
"""Checks that intra-repo markdown links resolve to real files.

Scans the *.md files at the repository root and everything under
docs/ (whatever is on disk — the documentation surfaces this repo
publishes), extracts [text](target) links, and verifies each relative
target exists. External links (http/https/mailto) and pure in-page
anchors (#section) are skipped; a relative target's own #anchor suffix
is stripped before the existence check. Root-absolute targets like
/docs/x.md resolve against the repository root, and <angle-bracketed>
targets (markdown's escape for paths with spaces) are unwrapped before
resolution. Markdown elsewhere in the tree (e.g. tooling skill files)
is intentionally out of scope; widen the globs in main() if docs grow
beyond these two surfaces.

Exit status: 0 when every link resolves, 1 otherwise (broken links are
listed one per line as file: target). Run with --self-test to verify
the resolver against planted cases.
"""
import pathlib
import re
import sys
import tempfile

# [text](target) — an <angle-bracketed> target (which may contain
# spaces) or a bare one captured up to the closing paren; images and
# reference-style definitions are out of scope for this repo's docs.
LINK = re.compile(r"\[[^\]]*\]\((<[^>]*>|[^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def check_file(path: pathlib.Path, root: pathlib.Path) -> list:
    broken = []
    for target in LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith("<") and target.endswith(">"):
            target = target[1:-1]
        if not target or target.startswith(SKIP_PREFIXES):
            continue
        bare = target.split("#", 1)[0]
        if not bare:
            continue
        # A root-absolute target addresses the repository, not the
        # filesystem.
        base = root if bare.startswith("/") else path.parent
        resolved = (base / bare.lstrip("/")).resolve()
        if not resolved.exists():
            broken.append(f"{path.relative_to(root)}: {target}")
    return broken


def self_test() -> int:
    """Planted cases: one of each resolver fix, plus a genuine break."""
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        docs = root / "docs"
        docs.mkdir()
        (docs / "guide.md").write_text("# guide\n", encoding="utf-8")
        (docs / "spaced name.md").write_text("# spaced\n", encoding="utf-8")
        readme = root / "README.md"
        readme.write_text(
            "[root-absolute](/docs/guide.md)\n"
            "[angle-bracketed](<docs/spaced name.md>)\n"
            "[anchored](/docs/guide.md#section)\n"
            "[genuinely broken](/docs/missing.md)\n",
            encoding="utf-8")
        broken = check_file(readme, root)
    if broken != ["README.md: /docs/missing.md"]:
        print(f"check_links self-test FAILED: broken={broken!r}, want "
              f"exactly the planted /docs/missing.md")
        return 1
    print("check_links self-test passed")
    return 0


def main() -> int:
    if "--self-test" in sys.argv[1:]:
        return self_test()
    root = pathlib.Path(__file__).resolve().parents[2]
    candidates = sorted(root.glob("*.md")) + sorted(root.glob("docs/**/*.md"))
    broken = []
    for path in candidates:
        broken.extend(check_file(path, root))
    for entry in broken:
        print(f"broken link - {entry}")
    if not broken:
        print(f"{len(candidates)} markdown files checked, all links resolve")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
