# Empty dependencies file for cloudcache_catalog_tests.
# This may be replaced when dependencies are built.
