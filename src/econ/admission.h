#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/persist/codec.h"
#include "src/structure/structure.h"
#include "src/util/money.h"

namespace cloudcache {

/// Knobs of the per-tenant admission policy (see AdmissionController).
struct AdmissionOptions {
  /// Master switch; everything below is inert while false (the default),
  /// and the engine's behavior is bit-identical to the pre-admission code.
  bool enabled = false;
  /// A tenant is throttled once the regret the economy accrued on its
  /// behalf but never monetized exceeds this multiple of the revenue the
  /// tenant brought in.
  double throttle_ratio = 2.0;
  /// A throttled tenant is readmitted once revenue growth brings the
  /// ratio back under this bound. Must be <= throttle_ratio; the gap is
  /// the hysteresis band that prevents per-query flapping.
  double readmit_ratio = 1.0;
  /// No tenant is judged before its unmonetized regret reaches this
  /// floor, so a cold-start tenant with a few dollars of regret and no
  /// revenue yet is not throttled on its first queries.
  Money min_regret = Money::FromDollars(1.0);
  /// Fraction of a throttled tenant's regret still booked (into both the
  /// global and the tenant ledger, so the partition invariant holds).
  /// 0 suppresses everything the tenant would accrue; a small positive
  /// value lets the tenant's *strongest* demand still cross Eq. 3
  /// eventually — churny marginal candidates are what starve out.
  double throttled_regret_scale = 0.0;
  /// Whether tripping the throttle forfeits the tenant's standing regret
  /// out of the shared ledger. Forfeiting stops in-flight investment on
  /// the tenant's behalf immediately; keeping it lets already-justified
  /// candidates build and only starves future accrual.
  bool forfeit_standing_regret = true;
};

/// Per-tenant admission control: throttles tenants whose accrued regret
/// the economy cannot monetize.
///
/// The shared economy invests the global ledger's regret wherever Eq. 3
/// says, so a tenant whose demand never converts into profitable
/// structures — its regret keeps aging out of the candidate pool or
/// backing builds that immediately fail — still drags investment capital
/// and candidate-pool slots away from the tenants whose regret pays.
/// This controller watches, per tenant, the split of accrued regret into
/// *monetized* (the tenant's ledger share of a structure at the moment
/// the economy invested in it — provisionally: a structure that later
/// fails maintenance hands its backers' shares back to unmonetized,
/// because a build that could not pay its rent wasted the credit it
/// consumed) and *unmonetized* (everything else: standing regret, regret
/// forfeited by aging, and the reclaimed backing of failed builds),
/// against the revenue the tenant's queries deposited. When unmonetized
/// regret outruns revenue by `throttle_ratio`, the tenant is throttled;
/// revenue keeps accumulating while throttled (its queries are still
/// served and billed), so the ratio decays and the tenant is readmitted
/// at `readmit_ratio` — a deterministic hysteresis loop driven purely by
/// the query stream.
///
/// The controller only decides; the EconomyEngine enforces: a throttled
/// tenant's queries are served exactly as before (same plans, same
/// payments — throttling never degrades an individual response), but
/// their regret is not booked, and the tenant's standing regret is
/// forfeited at the moment of throttling, so the shared ledger stops
/// investing on the tenant's behalf. All state is a pure function of the
/// recorded stream, preserving bit-identical replays.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  /// Provisions `n` tenants, resetting all state (mirrors
  /// EconomyEngine::SetTenantCount). With n == 0 the controller never
  /// throttles.
  void SetTenantCount(size_t n);

  bool enabled() const { return options_.enabled; }
  size_t tenant_count() const { return tenants_.size(); }

  /// Books revenue a tenant's query deposited (the user's payment).
  void RecordRevenue(uint32_t tenant, Money amount);
  /// Books regret accrued on the tenant's behalf (its share of every
  /// Eq. 1/2 distribution).
  void RecordRegret(uint32_t tenant, Money amount);
  /// Books regret that converted into an investment: the tenant's ledger
  /// share of `structure` at the moment the economy built it. The share
  /// is remembered per structure so a later failure can reclaim it.
  void RecordMonetized(uint32_t tenant, StructureId structure, Money amount);
  /// A built structure failed maintenance: every tenant share recorded
  /// for it moves back from monetized to unmonetized (the build was
  /// wasted). No-op for structures with no recorded backing.
  void OnStructureFailed(StructureId structure);

  /// Re-evaluates and returns the tenant's throttle state. Returns true
  /// exactly while the tenant is throttled; the transition into the
  /// throttled state is also reported through `newly_throttled` (when
  /// non-null) so the engine can forfeit the tenant's standing regret
  /// once, at the moment of throttling.
  bool Throttled(uint32_t tenant, bool* newly_throttled = nullptr);

  /// Accrued-but-never-monetized regret (the throttle signal's numerator).
  Money Unmonetized(uint32_t tenant) const;
  Money revenue(uint32_t tenant) const { return tenants_.at(tenant).revenue; }
  Money accrued(uint32_t tenant) const { return tenants_.at(tenant).accrued; }
  bool throttled(uint32_t tenant) const {
    return tenants_.at(tenant).throttled;
  }

  /// Checkpoint support: per-tenant state in tenant order plus the
  /// per-structure backing shares sorted by id. The tenant count must
  /// already have been provisioned (reconstruction does it).
  void SaveState(persist::Encoder* enc) const;
  Status RestoreState(persist::Decoder* dec);

 private:
  struct TenantState {
    Money revenue;
    /// Regret booked while admitted (suppressed regret is never booked).
    Money accrued;
    /// Portion of `accrued` that backed structures the economy built.
    Money monetized;
    bool throttled = false;
  };

  AdmissionOptions options_;
  std::vector<TenantState> tenants_;
  /// Per-structure monetized shares (one slot per tenant), kept until the
  /// structure fails (reclaimed) or forever if it stays healthy.
  std::unordered_map<StructureId, std::vector<Money>> backing_;
};

}  // namespace cloudcache
