file(REMOVE_RECURSE
  "CMakeFiles/cloudcache_workload_tests.dir/workload/generator_test.cpp.o"
  "CMakeFiles/cloudcache_workload_tests.dir/workload/generator_test.cpp.o.d"
  "CMakeFiles/cloudcache_workload_tests.dir/workload/trace_test.cpp.o"
  "CMakeFiles/cloudcache_workload_tests.dir/workload/trace_test.cpp.o.d"
  "cloudcache_workload_tests"
  "cloudcache_workload_tests.pdb"
  "cloudcache_workload_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudcache_workload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
