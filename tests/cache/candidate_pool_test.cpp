#include "src/cache/candidate_pool.h"

#include <gtest/gtest.h>

namespace cloudcache {
namespace {

TEST(CandidatePoolTest, TouchInsertsNewCandidate) {
  CandidatePool pool(4);
  EXPECT_TRUE(pool.Touch(7, 0.0).empty());
  EXPECT_TRUE(pool.Contains(7));
  EXPECT_EQ(pool.size(), 1u);
}

TEST(CandidatePoolTest, EvictsLruWhenFull) {
  CandidatePool pool(2);
  pool.Touch(1, 0.0);
  pool.Touch(2, 1.0);
  const std::vector<StructureId> evicted = pool.Touch(3, 2.0);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1u);  // Oldest.
  EXPECT_FALSE(pool.Contains(1));
  EXPECT_TRUE(pool.Contains(2));
  EXPECT_TRUE(pool.Contains(3));
}

TEST(CandidatePoolTest, TouchRefreshesRecency) {
  CandidatePool pool(2);
  pool.Touch(1, 0.0);
  pool.Touch(2, 1.0);
  pool.Touch(1, 2.0);  // 1 is now the most recent.
  const std::vector<StructureId> evicted = pool.Touch(3, 3.0);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 2u);
}

TEST(CandidatePoolTest, EraseRemovesWithoutEviction) {
  CandidatePool pool(2);
  pool.Touch(1, 0.0);
  pool.Erase(1);
  EXPECT_FALSE(pool.Contains(1));
  EXPECT_EQ(pool.size(), 0u);
  pool.Erase(99);  // No-op.
}

TEST(CandidatePoolTest, MruOrder) {
  CandidatePool pool(3);
  pool.Touch(1, 0.0);
  pool.Touch(2, 1.0);
  pool.Touch(3, 2.0);
  pool.Touch(1, 3.0);
  EXPECT_EQ(pool.MruOrder(), (std::vector<StructureId>{1, 3, 2}));
}

TEST(CandidatePoolTest, CapacityOneKeepsOnlyNewest) {
  CandidatePool pool(1);
  pool.Touch(1, 0.0);
  const auto evicted = pool.Touch(2, 1.0);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1u);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(CandidatePoolTest, RepeatedTouchNeverEvicts) {
  CandidatePool pool(2);
  pool.Touch(5, 0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.Touch(5, i).empty());
  }
  EXPECT_EQ(pool.size(), 1u);
}

TEST(CandidatePoolTest, VictimScorerEvictsMostConcentratedInColdTail) {
  CandidatePool pool(3);
  // Lower score = more concentrated backing = preferred victim.
  pool.SetVictimScorer(
      [](StructureId id) { return id == 2 ? 0.0 : 1.0; }, /*window=*/3);
  pool.Touch(1, 0.0);
  pool.Touch(2, 1.0);
  pool.Touch(3, 2.0);
  // Classic LRU would evict 1 (coldest); the scorer picks 2 instead.
  const std::vector<StructureId> evicted = pool.Touch(4, 3.0);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 2u);
  EXPECT_TRUE(pool.Contains(1));
  EXPECT_TRUE(pool.Contains(3));
  EXPECT_TRUE(pool.Contains(4));
}

TEST(CandidatePoolTest, ConstantScorerDegeneratesToLru) {
  CandidatePool pool(2);
  pool.SetVictimScorer([](StructureId) { return 0.5; }, /*window=*/2);
  pool.Touch(1, 0.0);
  pool.Touch(2, 1.0);
  // Equal scores tie toward the colder entry — exactly classic LRU.
  const std::vector<StructureId> evicted = pool.Touch(3, 2.0);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1u);
}

TEST(CandidatePoolTest, ScorerWindowBoundsTheSearch) {
  CandidatePool pool(4);
  // Entry 4 would score lowest, but it lies outside the 2-entry cold
  // tail, so the window never sees it.
  pool.SetVictimScorer(
      [](StructureId id) { return id == 4 ? 0.0 : static_cast<double>(id); },
      /*window=*/2);
  pool.Touch(1, 0.0);
  pool.Touch(2, 1.0);
  pool.Touch(3, 2.0);
  pool.Touch(4, 3.0);
  const std::vector<StructureId> evicted = pool.Touch(5, 4.0);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1u);  // min(score(1)=1, score(2)=2).
  EXPECT_TRUE(pool.Contains(4));
}

TEST(CandidatePoolTest, ScorerNeverEvictsTheJustTouchedCandidate) {
  CandidatePool pool(1);
  pool.SetVictimScorer([](StructureId) { return 0.0; }, /*window=*/8);
  pool.Touch(1, 0.0);
  // Overflow with a window larger than the pool: the front entry (the
  // candidate whose Touch caused the overflow) must survive.
  const std::vector<StructureId> evicted = pool.Touch(2, 1.0);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1u);
  EXPECT_TRUE(pool.Contains(2));
}

TEST(CandidatePoolTest, NullScorerRestoresStrictLru) {
  CandidatePool pool(2);
  pool.SetVictimScorer([](StructureId id) { return -static_cast<double>(id); },
                       /*window=*/2);
  pool.SetVictimScorer(nullptr, 1);
  pool.Touch(1, 0.0);
  pool.Touch(2, 1.0);
  const std::vector<StructureId> evicted = pool.Touch(3, 2.0);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1u);
}

TEST(CandidatePoolTest, EvictionBufferIsClearedByNextTouch) {
  // Touch returns a reference to a reused internal buffer: an eviction
  // must not linger into the next call's result.
  CandidatePool pool(1);
  pool.Touch(1, 0.0);
  const std::vector<StructureId>& evicted = pool.Touch(2, 1.0);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1u);
  // Refreshing the resident candidate evicts nothing; the same buffer now
  // reads empty.
  EXPECT_TRUE(pool.Touch(2, 2.0).empty());
  EXPECT_TRUE(evicted.empty());  // Same storage, overwritten.
}

}  // namespace
}  // namespace cloudcache
