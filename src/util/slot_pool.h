#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace cloudcache {

/// Slot recycling for hot-path output buffers whose element count varies
/// call to call (plan sets, skeleton lists).
///
/// A plain `resize(used)` shrink destroys the trailing elements — and with
/// them the heap capacity of their inner vectors — so a workload that
/// alternates between a large and a small element count would re-allocate
/// on every switch. Instead, AcquireSlot reuses elements in place up to
/// the current size and refills from `spares` beyond it, and
/// ReleaseSurplus moves trailing surplus elements into `spares` rather
/// than destroying them. Steady state allocates nothing regardless of how
/// counts fluctuate.
template <typename T>
T& AcquireSlot(std::vector<T>* buf, size_t* used, std::vector<T>* spares) {
  if (*used < buf->size()) return (*buf)[(*used)++];
  if (!spares->empty()) {
    buf->push_back(std::move(spares->back()));
    spares->pop_back();
  } else {
    buf->emplace_back();
  }
  ++*used;
  return buf->back();
}

/// Trims `buf` to `used` elements, parking the surplus in `spares` for
/// the next AcquireSlot to reclaim.
template <typename T>
void ReleaseSurplus(std::vector<T>* buf, size_t used,
                    std::vector<T>* spares) {
  while (buf->size() > used) {
    spares->push_back(std::move(buf->back()));
    buf->pop_back();
  }
}

}  // namespace cloudcache
