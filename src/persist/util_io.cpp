#include "src/persist/util_io.h"

#include <utility>
#include <vector>

namespace cloudcache {
namespace persist {

void SaveRng(const Rng& rng, Encoder* enc) {
  uint64_t words[5];
  rng.SaveState(words);
  for (uint64_t word : words) enc->PutU64(word);
}

Status RestoreRng(Decoder* dec, Rng* rng) {
  uint64_t words[5];
  for (uint64_t& word : words) {
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&word));
  }
  rng->RestoreState(words);
  return Status::OK();
}

void SaveRunningStats(const RunningStats& stats, Encoder* enc) {
  enc->PutI64(stats.count());
  enc->PutDouble(stats.raw_mean());
  enc->PutDouble(stats.raw_m2());
  enc->PutDouble(stats.sum());
  enc->PutDouble(stats.raw_min());
  enc->PutDouble(stats.raw_max());
}

Status RestoreRunningStats(Decoder* dec, RunningStats* stats) {
  int64_t count = 0;
  double mean = 0, m2 = 0, sum = 0, min = 0, max = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadI64(&count));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&mean));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&m2));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&sum));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&min));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&max));
  stats->RestoreRaw(count, mean, m2, sum, min, max);
  return Status::OK();
}

void SaveTimeSeries(const TimeSeries& series, Encoder* enc) {
  enc->PutU64(series.size());
  for (double t : series.times()) enc->PutDouble(t);
  for (double v : series.values()) enc->PutDouble(v);
}

Status RestoreTimeSeries(Decoder* dec, TimeSeries* series) {
  uint64_t size = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&size));
  std::vector<double> times(size), values(size);
  for (double& t : times) {
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&t));
  }
  for (double& v : values) {
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&v));
  }
  series->RestoreRaw(std::move(times), std::move(values));
  return Status::OK();
}

}  // namespace persist
}  // namespace cloudcache
