#pragma once

#include <cstdint>
#include <string>

#include "src/util/money.h"
#include "src/util/units.h"

namespace cloudcache {

/// All prices and calibration factors of the cost model (Sections V-B,
/// V-C, VII-A).
///
/// Two distinct uses:
///  * the *metered* price list — what the cloud actually pays its
///    infrastructure provider; the simulator always meters operating cost
///    (Fig. 4) at full rates, and
///  * a scheme's *decision* price list — what its internal cost model
///    believes; the bypass-yield baseline is emulated exactly as the paper
///    does, "by associating cost only with network bandwidth, therefore
///    setting costs for CPU, disk and I/O to zero" (Section VII-A).
struct PriceList {
  // ---- Resource rates (2009-era Amazon EC2/S3, as imported by the paper).
  /// u and c: dollars per CPU-node-second of use ($0.10/hour).
  double cpu_second_dollars = 0.10 / 3600.0;
  /// cb: dollars per byte across the WAN ($0.17/GB).
  double network_byte_dollars = 0.17 / 1e9;
  /// cd: dollars per byte-second of cache disk ($0.15/GB-month).
  double disk_byte_second_dollars = 0.15 / (1e9 * kMonth);
  /// Dollars per logical I/O operation ($0.10 per million).
  double io_op_dollars = 0.10 / 1e6;
  /// Reserved-but-idle extra CPU nodes cost this fraction of the use rate
  /// (MaintN, Eq. 11, is constant per unit time; reservation is cheaper
  /// than use on 2009 clouds).
  double cpu_reserve_fraction = 0.2;

  // ---- Environment calibration (Section VII-A).
  /// lcpu: CPU overload factor ("we assume nodes are never overloaded").
  double lcpu = 1.0;
  /// fcpu: optimizer CPU units (millions of row operations) -> seconds;
  /// 0.014 "emulates the response time of SDSS queries".
  double fcpu = 0.014;
  /// fio: plan-reported logical I/O -> actual I/O operations.
  double fio = 1.0;
  /// fn: fraction of a CPU consumed while a network transfer is in flight
  /// ("the CPU is fully utilized during data transfer", fn = 1).
  double fn = 1.0;
  /// l: WAN latency in seconds ("there is no latency", l = 0).
  double latency_seconds = 0.0;
  /// t: WAN throughput cache<->backend, Mbit/s (25 Mbps, the maximum
  /// SDSS inter-node throughput [24]).
  double wan_mbps = 25.0;
  /// b: seconds to boot an on-demand CPU node (Eq. 10).
  double boot_seconds = 60.0;

  // ---- Cache execution environment (simulation substrate).
  /// Bytes per billable I/O operation. EC2's 2009 EBS billed per disk
  /// request, which coalesces sequential pages up to 128 KiB; pricing per
  /// 8 KiB page would absurdly make a local scan dearer than a WAN ship.
  double io_bytes_per_op = 131072.0;
  /// Seconds per sequential I/O op on clustered-FS storage (~1 GB/s).
  double io_seconds_per_op = 1.31e-4;
  /// Multiplier on I/O ops for unclustered index fetches: scattered row
  /// reads burn most of each coalesced 128 KiB op, so the per-byte op
  /// count is several times the sequential rate.
  double random_io_multiplier = 8.0;
  /// Per-extra-node overhead factor of the parallel scaling law, chosen so
  /// a query with parallel_fraction 0.875 matches the prototypical SDSS
  /// scaling of [17]: 2x speedup at 3 nodes for +25% CPU.
  double parallel_overhead = 0.125 / 0.875;

  /// WAN bandwidth in bytes per second.
  double WanBytesPerSecond() const { return MbpsToBytesPerSec(wan_mbps); }

  /// Seconds to move `bytes` across the WAN, including latency.
  double WanSeconds(uint64_t bytes) const {
    return latency_seconds +
           static_cast<double>(bytes) / WanBytesPerSecond();
  }

  // ---- Rate-to-Money conversions (single rounding boundary).
  Money CpuCost(double cpu_seconds) const {
    return Money::FromDollars(cpu_seconds * cpu_second_dollars);
  }
  Money NetworkCost(uint64_t bytes) const {
    return Money::FromDollars(static_cast<double>(bytes) *
                              network_byte_dollars);
  }
  Money DiskCost(uint64_t bytes, double seconds) const {
    return Money::FromDollars(static_cast<double>(bytes) * seconds *
                              disk_byte_second_dollars);
  }
  Money IoCost(uint64_t ops) const {
    return Money::FromDollars(static_cast<double>(ops) * io_op_dollars);
  }

  /// The paper's metered rates: Amazon EC2/S3 as of 2009 (defaults above).
  static PriceList AmazonEc2_2009();

  /// A GoGrid-like sheet: "GoGrid gives network bandwidth for free"
  /// (Section I) — network at $0, compute/disk slightly above EC2.
  static PriceList GoGrid2009();

  /// The bypass-yield baseline's decision prices: only network bandwidth
  /// costs money (CPU, disk, I/O at zero), per Section VII-A.
  static PriceList NetworkOnly();
};

/// One-line description ("cpu=$0.10/h net=$0.17/GB disk=$0.15/GB-mo ...").
std::string ToString(const PriceList& prices);

}  // namespace cloudcache
