#include "src/server/server.h"

#include <poll.h>
#include <sys/socket.h>

#include <cstdio>
#include <string>
#include <utility>

#include "src/obs/registry.h"
#include "src/persist/snapshot.h"
#include "src/structure/index_advisor.h"
#include "src/util/logging.h"

namespace cloudcache {
namespace server {

namespace {

/// Sends one Error frame; best-effort (the peer may already be gone).
void SendError(const Socket& conn, ErrorCode code,
               const std::string& message) {
  persist::Encoder enc;
  ErrorMsg msg;
  msg.code = code;
  msg.message = message;
  EncodeError(msg, &enc);
  const Status ignored = WriteFrame(conn, enc);
  (void)ignored;
}

}  // namespace

CloudCachedServer::CloudCachedServer(
    const Catalog* catalog, const std::vector<QueryTemplate>* templates,
    const ExperimentConfig* config, ServerOptions options)
    : catalog_(catalog),
      templates_(templates),
      config_(config),
      options_(std::move(options)) {
  config_hash_ = HashExperimentConfig(*config_);
  multi_tenant_ =
      config_->tenancy.tenants > 1 || config_->tenancy.force_event_path;
  stream_count_ = config_->tenancy.tenants;
}

CloudCachedServer::~CloudCachedServer() {
  RequestShutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (metrics_thread_.joinable()) metrics_thread_.join();
  pool_.reset();
}

Status CloudCachedServer::BuildEconomy() {
  if (resolved_.empty()) {
    Result<std::vector<ResolvedTemplate>> resolved =
        ResolveTemplates(*catalog_, *templates_);
    CLOUDCACHE_RETURN_IF_ERROR(resolved.status());
    resolved_ = std::move(resolved).value();
    indexes_ =
        RecommendIndexes(*catalog_, resolved_, config_->index_candidates);
  }
  // The identical graph RunExperiment builds — that is the whole point:
  // scheme construction, per-stream generators, and simulator options
  // all come from the one shared config, so the economy the connections
  // drive is the economy the simulator pins.
  scheme_ = MakeExperimentScheme(*catalog_, indexes_, *config_);
  twins_.clear();
  twins_.reserve(stream_count_);
  for (uint32_t t = 0; t < stream_count_; ++t) {
    twins_.push_back(std::make_unique<WorkloadGenerator>(
        catalog_, resolved_,
        TenantWorkloadOptions(config_->workload, config_->tenancy, t)));
  }
  SimulatorOptions sim_options = config_->sim;
  sim_options.node_rent_multiplier = config_->cluster.node_rent_multiplier;
  sim_options.checkpoint.config_hash = config_hash_;
  sim_options.checkpoint.path = options_.snapshot_path;
  // Cadence is the server's own (after-serve under mu_), and restore is
  // handled in Start(): the simulator never runs its internal drivers
  // here.
  sim_options.checkpoint.every = 0;
  sim_options.checkpoint.crash_after = 0;
  if (multi_tenant_) {
    std::vector<WorkloadGenerator*> generators;
    generators.reserve(twins_.size());
    for (const std::unique_ptr<WorkloadGenerator>& twin : twins_) {
      generators.push_back(twin.get());
    }
    sim_ = std::make_unique<Simulator>(catalog_, scheme_.get(),
                                       std::move(generators), sim_options);
  } else {
    sim_ = std::make_unique<Simulator>(catalog_, scheme_.get(),
                                       twins_[0].get(), sim_options);
  }
  return Status::OK();
}

Status CloudCachedServer::Start() {
  if (stream_count_ == 0) {
    return Status::InvalidArgument("config.tenancy.tenants must be >= 1");
  }
  CLOUDCACHE_RETURN_IF_ERROR(BuildEconomy());

  if (options_.restore != CheckpointOptions::Restore::kNone) {
    if (options_.snapshot_path.empty()) {
      return Status::InvalidArgument(
          "restore requested without a snapshot path");
    }
    const bool hard = options_.restore == CheckpointOptions::Restore::kHard;
    Status restored = Status::OK();
    Result<persist::SnapshotReader> reader =
        persist::SnapshotReader::FromFile(options_.snapshot_path);
    if (!reader.ok()) {
      restored = reader.status();
    } else {
      restored = sim_->RestoreFrom(reader.value());
    }
    if (!restored.ok()) {
      if (hard) return restored;
      std::fprintf(stderr,
                   "cloudcached: snapshot unusable (%s); starting fresh\n",
                   restored.ToString().c_str());
      // A partial restore may have touched the graph; rebuild from
      // scratch, exactly like RunExperimentChecked's kAuto fallback.
      CLOUDCACHE_RETURN_IF_ERROR(BuildEconomy());
    }
  }
  sim_->ExternalBegin();

  Result<Socket> listener = ListenTcp(options_.host, options_.port);
  CLOUDCACHE_RETURN_IF_ERROR(listener.status());
  listener_ = std::move(listener).value();
  Result<uint16_t> port = LocalPort(listener_);
  CLOUDCACHE_RETURN_IF_ERROR(port.status());
  port_ = port.value();

  if (options_.metrics_port >= 0) {
    if (options_.metrics_port > 65535) {
      return Status::InvalidArgument("metrics port out of range");
    }
    Result<Socket> metrics_listener = ListenTcp(
        options_.host, static_cast<uint16_t>(options_.metrics_port));
    CLOUDCACHE_RETURN_IF_ERROR(metrics_listener.status());
    metrics_listener_ = std::move(metrics_listener).value();
    Result<uint16_t> metrics_port = LocalPort(metrics_listener_);
    CLOUDCACHE_RETURN_IF_ERROR(metrics_port.status());
    metrics_port_ = metrics_port.value();
  }

  streams_.assign(stream_count_, StreamState());
  const uint32_t workers =
      options_.workers > 0 ? options_.workers : stream_count_ + 4;
  pool_ = std::make_unique<ThreadPool>(workers);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (metrics_listener_.valid()) {
    metrics_thread_ = std::thread([this] { MetricsLoop(); });
  }
  return Status::OK();
}

void CloudCachedServer::RequestShutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    for (const std::shared_ptr<Socket>& conn : live_connections_) {
      conn->ShutdownBoth();
    }
  }
  stop_.store(true);
  merge_cv_.notify_all();
}

Status CloudCachedServer::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  if (metrics_thread_.joinable()) metrics_thread_.join();
  // Runs any still-queued handlers (they see draining_ and bail) and
  // joins the workers; blocked reads were kicked by RequestShutdown.
  pool_.reset();

  std::lock_guard<std::mutex> lock(mu_);
  CLOUDCACHE_RETURN_IF_ERROR(checkpoint_status_);
  if (options_.snapshot_path.empty()) return Status::OK();
  if (tainted_) {
    return Status::FailedPrecondition(
        "refusing the shutdown snapshot: " + taint_reason_ +
        " (the economy no longer matches any simulator-reachable state)");
  }
  if (sim_->external_processed() >= sim_->options().num_queries) {
    // Same rule as the drivers: a completed run is never checkpointed.
    std::fprintf(stderr,
                 "cloudcached: run complete (%llu queries); no shutdown "
                 "snapshot (nothing to resume)\n",
                 static_cast<unsigned long long>(sim_->external_processed()));
    return Status::OK();
  }
  return sim_->ExternalCheckpoint();
}

uint64_t CloudCachedServer::processed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sim_->external_processed();
}

void CloudCachedServer::AcceptLoop() {
  while (!stop_.load()) {
    pollfd pfd;
    pfd.fd = listener_.fd();
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (stop_.load()) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Socket>(fd);
    EnableNoDelay(*conn);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (draining_) {
        continue;  // conn closes via RAII; the peer sees a reset.
      }
    }
    pool_->Submit([this, conn] { HandleConnection(conn); });
  }
  listener_.Close();
}

void CloudCachedServer::HandleConnection(std::shared_ptr<Socket> conn) {
  RegisterConnection(conn);

  std::vector<uint8_t> payload;
  bool clean_eof = false;
  HelloMsg hello;
  const Status read = ReadFrame(*conn, &payload, &clean_eof);
  if (!read.ok() || clean_eof) {
    UnregisterConnection(conn.get());
    return;
  }
  persist::Decoder dec(payload.data(), payload.size());
  MessageType type = MessageType::kHello;
  Status parsed = PeekType(&dec, &type);
  if (parsed.ok() && type != MessageType::kHello) {
    parsed = Status::InvalidArgument("first message must be Hello");
  }
  if (parsed.ok()) parsed = DecodeHello(&dec, &hello);
  if (!parsed.ok()) {
    SendError(*conn, ErrorCode::kBadFrame, parsed.message());
    UnregisterConnection(conn.get());
    return;
  }

  HelloAckMsg ack;
  ack.config_hash = config_hash_;
  ack.num_queries = sim_->options().num_queries;
  if (hello.protocol_version != kProtocolVersion) {
    SendError(*conn, ErrorCode::kVersionMismatch,
              "server speaks protocol version " +
                  std::to_string(kProtocolVersion) + ", client sent " +
                  std::to_string(hello.protocol_version));
    UnregisterConnection(conn.get());
    return;
  }
  if (hello.config_hash != 0 && hello.config_hash != config_hash_) {
    SendError(*conn, ErrorCode::kConfigMismatch,
              "client config hash does not match the server's experiment "
              "configuration");
    UnregisterConnection(conn.get());
    return;
  }

  if (hello.stream_id == kControlStream) {
    ack.stream_id = kControlStream;
    persist::Encoder enc;
    EncodeHelloAck(ack, &enc);
    if (WriteFrame(*conn, enc).ok()) ControlLoop(*conn);
    UnregisterConnection(conn.get());
    return;
  }
  if (hello.stream_id >= stream_count_) {
    SendError(*conn, ErrorCode::kStreamOutOfRange,
              "stream " + std::to_string(hello.stream_id) +
                  " out of range; this server runs " +
                  std::to_string(stream_count_) + " stream(s)");
    UnregisterConnection(conn.get());
    return;
  }

  const uint32_t stream = hello.stream_id;
  {
    // Decide under the lock, reply outside it: mu_ must never be held
    // across socket writes (or the re-lock in UnregisterConnection).
    ErrorCode refusal = ErrorCode::kInternal;
    std::string refusal_message;
    bool refused = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      StreamState& state = streams_[stream];
      if (draining_) {
        refused = true;
        refusal = ErrorCode::kShuttingDown;
        refusal_message = "server is draining";
      } else if (state.connected) {
        refused = true;
        refusal = ErrorCode::kStreamClaimed;
        refusal_message = "stream " + std::to_string(stream) +
                          " already has a live connection";
      } else if (state.retired) {
        // Once a stream leaves the merge the global order moved on
        // without it; re-admitting it would diverge from the simulator's
        // schedule.
        refused = true;
        refusal = ErrorCode::kNotAllowed;
        refusal_message = "stream " + std::to_string(stream) +
                          " already left the merge and cannot rejoin";
      } else {
        state.claimed = true;
        state.connected = true;
        ack.stream_id = stream;
        ack.next_query_id = twins_[stream]->queries_generated();
      }
    }
    if (refused) {
      SendError(*conn, refusal, refusal_message);
      UnregisterConnection(conn.get());
      return;
    }
  }
  merge_cv_.notify_all();  // The claim may complete the merge gate.

  persist::Encoder enc;
  EncodeHelloAck(ack, &enc);
  if (WriteFrame(*conn, enc).ok()) StreamLoop(*conn, stream);

  {
    std::lock_guard<std::mutex> lock(mu_);
    streams_[stream].connected = false;
    streams_[stream].retired = true;
  }
  merge_cv_.notify_all();
  UnregisterConnection(conn.get());
}

bool CloudCachedServer::MergeTurnLocked(uint32_t stream) const {
  // Service begins only once every configured stream has claimed: until
  // then the earliest unclaimed stream might hold the merge head, and
  // serving around it would diverge from the simulator's schedule.
  for (const StreamState& state : streams_) {
    if (!state.claimed) return false;
  }
  // Merge head: earliest peeked arrival over the streams still in the
  // merge; ties go to the lowest stream id, exactly the EventQueue rule.
  uint32_t head = kControlStream;
  SimTime head_time = 0;
  for (uint32_t u = 0; u < stream_count_; ++u) {
    if (!streams_[u].connected) continue;
    const SimTime peek = twins_[u]->PeekNextArrival();
    if (head == kControlStream || peek < head_time) {
      head = u;
      head_time = peek;
    }
  }
  return head == stream;
}

void CloudCachedServer::StreamLoop(const Socket& conn, uint32_t stream) {
  std::vector<uint8_t> payload;
  bool clean_eof = false;
  while (true) {
    const Status read = ReadFrame(conn, &payload, &clean_eof);
    if (!read.ok() || clean_eof) return;
    persist::Decoder dec(payload.data(), payload.size());
    MessageType type = MessageType::kQuery;
    Status parsed = PeekType(&dec, &type);
    if (!parsed.ok()) {
      SendError(conn, ErrorCode::kBadFrame, parsed.message());
      return;
    }

    if (type == MessageType::kStats) {
      if (!DecodeStats(&dec).ok()) {
        SendError(conn, ErrorCode::kBadFrame, "malformed Stats");
        return;
      }
      persist::Encoder enc;
      {
        std::lock_guard<std::mutex> lock(mu_);
        EncodeStatsAck(StatsLocked(), &enc);
      }
      if (!WriteFrame(conn, enc).ok()) return;
      continue;
    }
    if (type == MessageType::kShutdown) {
      if (!DecodeShutdown(&dec).ok()) {
        SendError(conn, ErrorCode::kBadFrame, "malformed Shutdown");
        return;
      }
      persist::Encoder enc;
      EncodeShutdownAck(&enc);
      const Status ignored = WriteFrame(conn, enc);
      (void)ignored;
      RequestShutdown();
      return;
    }
    if (type != MessageType::kQuery) {
      SendError(conn, ErrorCode::kNotAllowed,
                std::string(MessageTypeName(type)) +
                    " not allowed on a stream connection");
      return;
    }

    Query received;
    parsed = DecodeQuery(&dec, &received);
    if (!parsed.ok()) {
      SendError(conn, ErrorCode::kBadFrame, parsed.message());
      return;
    }

    OutcomeMsg outcome;
    ErrorCode error = ErrorCode::kInternal;
    std::string error_message;
    bool serve_failed = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      merge_cv_.wait(lock, [this, stream] {
        return draining_ ||
               sim_->external_processed() >= sim_->options().num_queries ||
               MergeTurnLocked(stream);
      });
      if (draining_) {
        error = ErrorCode::kShuttingDown;
        error_message = "server is draining";
        serve_failed = true;
      } else if (sim_->external_processed() >=
                 sim_->options().num_queries) {
        error = ErrorCode::kRunComplete;
        error_message = "the configured run of " +
                        std::to_string(sim_->options().num_queries) +
                        " queries is complete";
        serve_failed = true;
      } else {
        // The twin generator is the source of truth: draw its query,
        // verify the client sent the same one, and serve the twin's
        // instance — the economy's evolution is then a pure function of
        // the configuration, never of client-marshalled bytes.
        const Query expected = twins_[stream]->Next();
        if (received.id != expected.id ||
            received.template_id != expected.template_id ||
            received.arrival_time != expected.arrival_time ||
            received.table != expected.table ||
            received.tenant_id != expected.tenant_id) {
          tainted_ = true;
          taint_reason_ = "stream " + std::to_string(stream) +
                          " diverged from its twin generator at query " +
                          std::to_string(expected.id);
          error = ErrorCode::kStreamDiverged;
          error_message = taint_reason_;
          serve_failed = true;
        } else {
          const ServedQuery served = sim_->ExternalServe(expected);
          const uint64_t processed = sim_->external_processed();
          outcome.query_id = expected.id;
          outcome.global_index = processed - 1;
          outcome.served = served.served;
          outcome.access = static_cast<uint8_t>(served.spec.access);
          outcome.throttled = served.throttled;
          outcome.response_seconds = served.execution.time_seconds;
          outcome.payment_micros = served.payment.micros();
          outcome.profit_micros = served.profit.micros();
          outcome.has_budget_case = served.has_budget_case;
          outcome.budget_case = static_cast<uint8_t>(served.budget_case);
          outcome.investments = served.investments;
          outcome.evictions = served.evictions;
          if (options_.checkpoint_every > 0 &&
              processed % options_.checkpoint_every == 0 &&
              processed < sim_->options().num_queries &&
              checkpoint_status_.ok() && !tainted_) {
            checkpoint_status_ = sim_->ExternalCheckpoint();
            if (!checkpoint_status_.ok()) {
              std::fprintf(stderr, "cloudcached: checkpoint failed: %s\n",
                           checkpoint_status_.ToString().c_str());
            }
          }
          if (options_.log_every > 0 &&
              processed % options_.log_every == 0) {
            std::fprintf(
                stderr, "cloudcached: served %llu/%llu, credit $%.2f\n",
                static_cast<unsigned long long>(processed),
                static_cast<unsigned long long>(
                    sim_->options().num_queries),
                scheme_->credit().ToDollars());
          }
        }
      }
    }
    merge_cv_.notify_all();

    if (serve_failed) {
      SendError(conn, error, error_message);
      return;
    }
    persist::Encoder enc;
    EncodeOutcome(outcome, &enc);
    if (!WriteFrame(conn, enc).ok()) return;
  }
}

void CloudCachedServer::ControlLoop(const Socket& conn) {
  std::vector<uint8_t> payload;
  bool clean_eof = false;
  while (true) {
    const Status read = ReadFrame(conn, &payload, &clean_eof);
    if (!read.ok() || clean_eof) return;
    persist::Decoder dec(payload.data(), payload.size());
    MessageType type = MessageType::kStats;
    if (!PeekType(&dec, &type).ok()) {
      SendError(conn, ErrorCode::kBadFrame, "unknown message type");
      return;
    }
    if (type == MessageType::kStats && DecodeStats(&dec).ok()) {
      persist::Encoder enc;
      {
        std::lock_guard<std::mutex> lock(mu_);
        EncodeStatsAck(StatsLocked(), &enc);
      }
      if (!WriteFrame(conn, enc).ok()) return;
      continue;
    }
    if (type == MessageType::kStatsSubscribe) {
      StatsSubscribeMsg sub;
      if (!DecodeStatsSubscribe(&dec, &sub).ok()) {
        SendError(conn, ErrorCode::kBadFrame, "malformed StatsSubscribe");
        return;
      }
      SubscriptionLoop(conn, sub.every);
      return;
    }
    if (type == MessageType::kShutdown && DecodeShutdown(&dec).ok()) {
      persist::Encoder enc;
      EncodeShutdownAck(&enc);
      const Status ignored = WriteFrame(conn, enc);
      (void)ignored;
      RequestShutdown();
      return;
    }
    SendError(conn, ErrorCode::kNotAllowed,
              "control connections speak Stats, StatsSubscribe, and "
              "Shutdown only");
    return;
  }
}

void CloudCachedServer::SubscriptionLoop(const Socket& conn,
                                         uint64_t every) {
  uint64_t next_at = 0;  // The first ack goes out immediately.
  while (true) {
    StatsAckMsg stats;
    bool final_ack = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      merge_cv_.wait(lock, [this, next_at] {
        return draining_ || stop_.load() ||
               sim_->external_processed() >= next_at ||
               sim_->external_processed() >= sim_->options().num_queries;
      });
      stats = StatsLocked();
      final_ack = draining_ || stop_.load() ||
                  stats.processed >= stats.num_queries;
    }
    next_at = stats.processed + every;
    // The frame goes out without mu_: a slow or stalled watcher must
    // never hold up the merge.
    persist::Encoder enc;
    EncodeStatsAck(stats, &enc);
    if (!WriteFrame(conn, enc).ok()) return;
    if (final_ack) return;
  }
}

StatsAckMsg CloudCachedServer::StatsLocked() const {
  StatsAckMsg stats;
  const SimMetrics& metrics = sim_->external_metrics();
  stats.processed = sim_->external_processed();
  stats.num_queries = sim_->options().num_queries;
  stats.served = metrics.served;
  stats.credit_micros = scheme_->credit().micros();
  for (const StreamState& state : streams_) {
    if (state.connected) ++stats.active_streams;
  }
  stats.served_in_cache = metrics.served_in_cache;
  stats.throttled = metrics.throttled;
  stats.investments = metrics.investments;
  stats.evictions = metrics.evictions;
  if (!metrics.tenants.empty()) {
    stats.streams.reserve(metrics.tenants.size());
    for (const TenantMetrics& tenant : metrics.tenants) {
      StreamStatsMsg slice;
      slice.stream = tenant.tenant_id;
      slice.queries = tenant.queries;
      slice.served = tenant.served;
      slice.throttled = tenant.throttled;
      stats.streams.push_back(slice);
    }
  } else {
    // Single-tenant runs keep no per-tenant block; synthesize the one
    // slice from the aggregates so watchers see a uniform shape.
    StreamStatsMsg slice;
    slice.stream = 0;
    slice.queries = metrics.queries;
    slice.served = metrics.served;
    slice.throttled = metrics.throttled;
    stats.streams.push_back(slice);
  }
  return stats;
}

std::string CloudCachedServer::RenderMetricsText() const {
  obs::Registry registry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    obs::FillFromSimMetrics(sim_->external_metrics(), &registry);
    // Server-side liveness gauges, beyond what SimMetrics carries.
    registry.Counter("cloudcache_server_processed_total",
                     "Queries served so far, in merged order.",
                     static_cast<double>(sim_->external_processed()));
    registry.Gauge("cloudcache_server_run_queries",
                   "Configured merged run length.",
                   static_cast<double>(sim_->options().num_queries));
    uint32_t active = 0;
    for (const StreamState& state : streams_) {
      if (state.connected) ++active;
    }
    registry.Gauge("cloudcache_server_active_streams",
                   "Workload streams with a live connection.",
                   static_cast<double>(active));
    registry.Gauge("cloudcache_server_credit_dollars",
                   "Live cloud credit CR.", scheme_->credit().ToDollars());
  }
  // Rendering is pure string work — do it off the economy's mutex.
  return registry.RenderPrometheus();
}

void CloudCachedServer::MetricsLoop() {
  while (!stop_.load()) {
    pollfd pfd;
    pfd.fd = metrics_listener_.fd();
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (stop_.load()) break;
    if (ready <= 0) continue;
    const int fd = ::accept(metrics_listener_.fd(), nullptr, nullptr);
    if (fd < 0) continue;
    Socket conn(fd);
    // One-shot HTTP/1.0 exchange: read the request head, answer, close.
    // Only the request line matters; headers are skipped.
    std::string request;
    char buf[1024];
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.size() < 8192) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      request.append(buf, static_cast<size_t>(n));
    }
    std::string status_line = "200 OK";
    std::string body;
    std::string content_type = "text/plain; charset=utf-8";
    if (request.rfind("GET ", 0) != 0) {
      status_line = "405 Method Not Allowed";
      body = "only GET is served\n";
    } else {
      const size_t path_end = request.find(' ', 4);
      const std::string path = path_end == std::string::npos
                                   ? std::string()
                                   : request.substr(4, path_end - 4);
      if (path == "/metrics" || path == "/") {
        body = RenderMetricsText();
        content_type = "text/plain; version=0.0.4; charset=utf-8";
      } else {
        status_line = "404 Not Found";
        body = "try /metrics\n";
      }
    }
    const std::string response =
        "HTTP/1.0 " + status_line + "\r\nContent-Type: " + content_type +
        "\r\nContent-Length: " + std::to_string(body.size()) +
        "\r\nConnection: close\r\n\r\n" + body;
    const Status ignored =
        WriteAll(conn, reinterpret_cast<const uint8_t*>(response.data()),
                 response.size());
    (void)ignored;
  }
  metrics_listener_.Close();
}

void CloudCachedServer::RegisterConnection(
    const std::shared_ptr<Socket>& conn) {
  std::lock_guard<std::mutex> lock(mu_);
  live_connections_.push_back(conn);
  if (draining_) conn->ShutdownBoth();
}

void CloudCachedServer::UnregisterConnection(const Socket* conn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < live_connections_.size(); ++i) {
    if (live_connections_[i].get() == conn) {
      live_connections_.erase(
          live_connections_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

}  // namespace server
}  // namespace cloudcache
