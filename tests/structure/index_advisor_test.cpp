#include "src/structure/index_advisor.h"

#include <gtest/gtest.h>

#include <set>

#include "src/catalog/tpch.h"
#include "src/query/templates.h"

namespace cloudcache {
namespace {

class IndexAdvisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = MakeTpchCatalog(1.0);
    Result<std::vector<ResolvedTemplate>> resolved =
        ResolveTemplates(catalog_, MakeTpchTemplates());
    ASSERT_TRUE(resolved.ok());
    templates_ = *resolved;
  }

  Catalog catalog_;
  std::vector<ResolvedTemplate> templates_;
};

TEST_F(IndexAdvisorTest, ProducesPaperPoolSize) {
  const auto pool = RecommendIndexes(catalog_, templates_, 65);
  EXPECT_EQ(pool.size(), 65u);
}

TEST_F(IndexAdvisorTest, AllCandidatesAreIndexes) {
  for (const StructureKey& key : RecommendIndexes(catalog_, templates_)) {
    EXPECT_EQ(key.type, StructureType::kIndex);
    EXPECT_FALSE(key.columns.empty());
  }
}

TEST_F(IndexAdvisorTest, NoDuplicates) {
  const auto pool = RecommendIndexes(catalog_, templates_, 65);
  std::set<std::string> seen;
  for (const StructureKey& key : pool) {
    EXPECT_TRUE(seen.insert(key.ToString(catalog_)).second)
        << key.ToString(catalog_);
  }
}

TEST_F(IndexAdvisorTest, Deterministic) {
  const auto a = RecommendIndexes(catalog_, templates_, 65);
  const auto b = RecommendIndexes(catalog_, templates_, 65);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST_F(IndexAdvisorTest, SingleColumnCandidatesForEveryPredicate) {
  const auto pool = RecommendIndexes(catalog_, templates_, 200);
  std::set<std::string> singles;
  for (const StructureKey& key : pool) {
    if (key.columns.size() == 1) {
      singles.insert(catalog_.column(key.columns.front()).name);
    }
  }
  for (const ResolvedTemplate& tmpl : templates_) {
    for (const auto& pred : tmpl.predicates) {
      EXPECT_TRUE(singles.count(catalog_.column(pred.column).name))
          << catalog_.column(pred.column).name;
    }
  }
}

TEST_F(IndexAdvisorTest, RespectsMaxWidth) {
  for (const StructureKey& key :
       RecommendIndexes(catalog_, templates_, 65, 3)) {
    EXPECT_LE(key.columns.size(), 3u);
  }
}

TEST_F(IndexAdvisorTest, IndexColumnsStayWithinOneTable) {
  for (const StructureKey& key : RecommendIndexes(catalog_, templates_)) {
    for (ColumnId col : key.columns) {
      EXPECT_EQ(catalog_.column(col).table_id, key.table);
    }
  }
}

TEST_F(IndexAdvisorTest, SmallTargetTruncates) {
  EXPECT_EQ(RecommendIndexes(catalog_, templates_, 5).size(), 5u);
}

TEST_F(IndexAdvisorTest, NoPaddingBeyondWhatTemplatesYield) {
  const auto pool = RecommendIndexes(catalog_, templates_, 100'000);
  // The pool is bounded by what 7 templates can generate, far below the
  // requested count; nothing is invented to pad it.
  EXPECT_LT(pool.size(), 1000u);
  EXPECT_GE(pool.size(), 65u);
}

TEST_F(IndexAdvisorTest, LeadingColumnIsAlwaysAPredicate) {
  std::set<ColumnId> predicate_columns;
  for (const ResolvedTemplate& tmpl : templates_) {
    for (const auto& pred : tmpl.predicates) {
      predicate_columns.insert(pred.column);
    }
  }
  for (const StructureKey& key : RecommendIndexes(catalog_, templates_)) {
    EXPECT_TRUE(predicate_columns.count(key.columns.front()))
        << key.ToString(catalog_);
  }
}

TEST_F(IndexAdvisorTest, EmptyTemplatesYieldEmptyPool) {
  EXPECT_TRUE(RecommendIndexes(catalog_, {}, 65).empty());
}

}  // namespace
}  // namespace cloudcache
