#pragma once

#include <vector>

#include "src/catalog/schema.h"
#include "src/cost/price_list.h"
#include "src/query/query.h"
#include "src/util/logging.h"

namespace cloudcache::testing {

/// A small, hand-computable catalog: one fact table of 1e6 rows with four
/// 8-byte columns and one dimension table of 1e3 rows with two columns.
/// Sizes: fact column = 8 MB, dim columns = 8 KB / 4 KB.
inline Catalog MakeTinyCatalog() {
  Catalog catalog;
  Table fact;
  fact.name = "fact";
  fact.row_count = 1'000'000;
  Column c;
  c.type = DataType::kInt64;
  c.width_bytes = 8;
  c.distinct_fraction = 1.0;
  c.name = "f_key";
  fact.columns.push_back(c);
  c.name = "f_date";
  c.distinct_fraction = 0.001;
  fact.columns.push_back(c);
  c.name = "f_value";
  c.distinct_fraction = 0.5;
  fact.columns.push_back(c);
  c.name = "f_flag";
  c.distinct_fraction = 0.00001;
  fact.columns.push_back(c);
  CLOUDCACHE_CHECK(catalog.AddTable(std::move(fact)).ok());

  Table dim;
  dim.name = "dim";
  dim.row_count = 1'000;
  c.name = "d_key";
  c.width_bytes = 8;
  c.distinct_fraction = 1.0;
  dim.columns.push_back(c);
  c.name = "d_attr";
  c.width_bytes = 4;
  c.type = DataType::kInt32;
  dim.columns.push_back(c);
  CLOUDCACHE_CHECK(catalog.AddTable(std::move(dim)).ok());
  return catalog;
}

/// A simple selection query on the tiny catalog's fact table: clustered
/// date predicate (sel) + non-clustered value predicate (0.5), outputs
/// f_key and f_value.
inline Query MakeTinyQuery(const Catalog& catalog, double sel = 0.01,
                           uint64_t id = 0) {
  Query q;
  q.id = id;
  q.template_id = 0;
  q.table = *catalog.FindTable("fact");
  q.output_columns = {*catalog.FindColumn("fact.f_key"),
                      *catalog.FindColumn("fact.f_value")};
  Predicate date;
  date.column = *catalog.FindColumn("fact.f_date");
  date.selectivity = sel;
  date.clustered = true;
  q.predicates.push_back(date);
  Predicate value;
  value.column = *catalog.FindColumn("fact.f_value");
  value.selectivity = 0.5;
  q.predicates.push_back(value);
  DeriveResultShape(catalog, 1.0, &q);
  return q;
}

/// Price list with easy round numbers for hand computation:
/// CPU $3.60/h = $0.001/s, net $0.10/GB, disk $0.10/GB-month,
/// io $1 per million ops, 100 Mbps (12.5 MB/s), no latency.
inline PriceList MakeRoundPrices() {
  PriceList p;
  p.cpu_second_dollars = 0.001;
  p.network_byte_dollars = 0.10 / 1e9;
  p.disk_byte_second_dollars = 0.10 / (1e9 * kMonth);
  p.io_op_dollars = 1.0 / 1e6;
  p.wan_mbps = 100.0;
  p.latency_seconds = 0.0;
  p.fcpu = 0.01;
  p.boot_seconds = 100.0;
  p.io_bytes_per_op = 8192.0;  // Page-granular ops keep hand-math simple.
  p.io_seconds_per_op = 8e-6;
  return p;
}

}  // namespace cloudcache::testing
