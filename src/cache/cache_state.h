#pragma once

#include <cstdint>
#include <vector>

#include "src/persist/codec.h"
#include "src/structure/structure.h"
#include "src/util/status.h"
#include "src/util/units.h"

namespace cloudcache {

/// The materialized contents of the cloud cache: which structures (columns,
/// indexes, extra CPU nodes) are currently built, how big they are, and
/// when each was last used by a selected plan.
///
/// Pure bookkeeping — all *decisions* (what to build, what to evict) live
/// in the economy and the baseline schemes; keeping the state dumb lets the
/// very different policies share it.
class CacheState {
 public:
  explicit CacheState(StructureRegistry* registry);

  /// True if `id` is built and usable.
  bool IsResident(StructureId id) const;

  /// Marks `id` resident. Fails with AlreadyExists if it already is.
  Status Add(StructureId id, SimTime now);

  /// Removes `id`. Fails with NotFound if not resident.
  Status Remove(StructureId id);

  /// Records that a selected plan used `id` at time `now` (LRU clock).
  void Touch(StructureId id, SimTime now);

  /// Time `id` was last touched (or added); meaningful only if resident.
  SimTime LastUsed(StructureId id) const;

  /// Fast path for the plan enumerator: is this catalog column cached?
  bool ColumnResident(ColumnId column) const;
  /// Residency bitmap over all catalog columns (input to Eq. 14).
  const std::vector<bool>& column_residency() const {
    return column_resident_;
  }

  /// Number of extra CPU nodes currently booted (beyond the always-on
  /// coordinator node).
  uint32_t extra_cpu_nodes() const { return extra_cpu_nodes_; }

  /// Total disk bytes occupied by resident columns and indexes.
  uint64_t resident_bytes() const { return resident_bytes_; }

  /// Monotonic residency epoch: bumped by every successful Add/Remove
  /// (never by Touch). Anything derived from *which* structures are
  /// resident — notably the plan enumerator's per-template skeleton
  /// cache — is valid exactly as long as the epoch it was computed at.
  uint64_t epoch() const { return epoch_; }

  /// All resident structure ids, ascending.
  std::vector<StructureId> Residents() const;

  /// Visits every resident id in ascending order without materializing
  /// the list — the per-query maintenance scan uses this to avoid the
  /// vector Residents() allocates.
  template <typename Fn>
  void ForEachResident(Fn&& fn) const {
    for (StructureId id = 0; id < resident_.size(); ++id) {
      if (resident_[id]) fn(id);
    }
  }

  /// Resident ids of one type, ascending.
  std::vector<StructureId> ResidentsOfType(StructureType type) const;

  /// The structure registry this state indexes into.
  const StructureRegistry& registry() const { return *registry_; }

  /// Checkpoint support: serializes the exact field state — including the
  /// residency epoch, which downstream plan caches key on, and the raw
  /// last-used clocks — so a restored cache is indistinguishable from the
  /// saved one to every policy that reads it.
  void SaveState(persist::Encoder* enc) const;
  Status RestoreState(persist::Decoder* dec);

 private:
  void EnsureSize(StructureId id);

  StructureRegistry* registry_;
  std::vector<bool> resident_;
  std::vector<SimTime> last_used_;
  std::vector<bool> column_resident_;
  uint64_t resident_bytes_ = 0;
  uint32_t extra_cpu_nodes_ = 0;
  uint64_t epoch_ = 0;
};

}  // namespace cloudcache
