#include "src/sim/experiment.h"

#include <cmath>
#include <utility>

#include "src/sim/node_parallel.h"
#include "src/sim/sweep.h"
#include "src/structure/index_advisor.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace cloudcache {

WorkloadOptions TenantWorkloadOptions(const WorkloadOptions& base,
                                      const TenancyOptions& tenancy,
                                      uint32_t tenant) {
  CLOUDCACHE_CHECK_GE(tenancy.tenants, 1u);
  CLOUDCACHE_CHECK_LT(tenant, tenancy.tenants);
  WorkloadOptions options = base;
  options.tenant_id = tenant;
  if (tenant > 0) options.seed = MixSeed(base.seed, tenant);
  if (tenancy.rotate_template_mix) options.popularity_offset = tenant;

  // Zipf traffic shares: w_t = (1/(t+1)^s) / sum. The shares split the
  // base arrival rate, so the merged stream offers the same load as the
  // single stream it replaces.
  double normalizer = 0;
  for (uint32_t u = 0; u < tenancy.tenants; ++u) {
    normalizer += std::pow(static_cast<double>(u + 1),
                           -tenancy.traffic_skew);
  }
  const double share = std::pow(static_cast<double>(tenant + 1),
                                -tenancy.traffic_skew) /
                       normalizer;
  options.interarrival_seconds = base.interarrival_seconds / share;
  return options;
}

namespace {

/// One construction + drive of the experiment's object graph. When
/// `snapshot` is non-null the freshly built graph is overwritten with the
/// snapshot's state before driving — on any restore error the graph is
/// abandoned (the caller rebuilds from scratch for a fresh run).
Result<SimMetrics> RunExperimentImpl(
    const Catalog& catalog, const std::vector<QueryTemplate>& templates,
    const ExperimentConfig& config,
    const persist::SnapshotReader* snapshot) {
  Result<std::vector<ResolvedTemplate>> resolved =
      ResolveTemplates(catalog, templates);
  CLOUDCACHE_CHECK(resolved.ok());

  const std::vector<StructureKey> indexes =
      RecommendIndexes(catalog, *resolved, config.index_candidates);

  const bool multi_tenant =
      config.tenancy.tenants > 1 || config.tenancy.force_event_path;
  const bool clustered = config.cluster.nodes > 1 ||
                         config.cluster.elastic ||
                         config.cluster.force_cluster_path;

  std::unique_ptr<Scheme> scheme =
      MakeExperimentScheme(catalog, indexes, config);
  if (config.tracer != nullptr) {
    scheme->SetEventTracer(config.tracer, /*node_ordinal=*/0);
  }
  SimulatorOptions sim_options = config.sim;
  sim_options.node_rent_multiplier = config.cluster.node_rent_multiplier;
  sim_options.checkpoint.config_hash = HashExperimentConfig(config);

  if (!multi_tenant) {
    WorkloadGenerator workload(&catalog, *resolved, config.workload);
    // The windowed parallel driver applies to clustered single-stream
    // runs when threads are requested; everything else stays on the
    // classic serial driver (the multi-tenant merge is a serial
    // discipline by construction).
    if (clustered && sim_options.parallel_threads > 0) {
      auto* cluster = static_cast<ClusterScheme*>(scheme.get());
      ParallelNodeSimulator simulator(&catalog, cluster, &workload,
                                      sim_options);
      if (snapshot != nullptr) {
        CLOUDCACHE_RETURN_IF_ERROR(simulator.RestoreFrom(*snapshot));
      }
      return simulator.RunChecked();
    }
    Simulator simulator(&catalog, scheme.get(), &workload, sim_options);
    if (snapshot != nullptr) {
      CLOUDCACHE_RETURN_IF_ERROR(simulator.RestoreFrom(*snapshot));
    }
    return simulator.RunChecked();
  }

  // Multi-tenant: one generator per stream, merged by the event-driven
  // simulator through the shared scheme.
  std::vector<std::unique_ptr<WorkloadGenerator>> generators;
  std::vector<WorkloadGenerator*> generator_ptrs;
  generators.reserve(config.tenancy.tenants);
  generator_ptrs.reserve(config.tenancy.tenants);
  for (uint32_t t = 0; t < config.tenancy.tenants; ++t) {
    generators.push_back(std::make_unique<WorkloadGenerator>(
        &catalog, *resolved,
        TenantWorkloadOptions(config.workload, config.tenancy, t)));
    generator_ptrs.push_back(generators.back().get());
  }
  Simulator simulator(&catalog, scheme.get(), std::move(generator_ptrs),
                      sim_options);
  if (snapshot != nullptr) {
    CLOUDCACHE_RETURN_IF_ERROR(simulator.RestoreFrom(*snapshot));
  }
  return simulator.RunChecked();
}

/// FNV-1a over the canonical little-endian serialization of the config.
uint64_t Fnv1a64(const std::vector<uint8_t>& bytes) {
  uint64_t hash = 1469598103934665603ull;
  for (uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

void EncodePriceList(const PriceList& p, persist::Encoder* enc) {
  enc->PutDouble(p.cpu_second_dollars);
  enc->PutDouble(p.network_byte_dollars);
  enc->PutDouble(p.disk_byte_second_dollars);
  enc->PutDouble(p.io_op_dollars);
  enc->PutDouble(p.cpu_reserve_fraction);
  enc->PutDouble(p.lcpu);
  enc->PutDouble(p.fcpu);
  enc->PutDouble(p.fio);
  enc->PutDouble(p.fn);
  enc->PutDouble(p.latency_seconds);
  enc->PutDouble(p.wan_mbps);
  enc->PutDouble(p.boot_seconds);
  enc->PutDouble(p.io_bytes_per_op);
  enc->PutDouble(p.io_seconds_per_op);
  enc->PutDouble(p.random_io_multiplier);
  enc->PutDouble(p.parallel_overhead);
}

}  // namespace

std::unique_ptr<Scheme> MakeExperimentScheme(
    const Catalog& catalog, const std::vector<StructureKey>& indexes,
    const ExperimentConfig& config) {
  const bool multi_tenant =
      config.tenancy.tenants > 1 || config.tenancy.force_event_path;
  const bool clustered = config.cluster.nodes > 1 ||
                         config.cluster.elastic ||
                         config.cluster.force_cluster_path;

  // Builds the scheme for one cache node. Ordinal 0 carries the
  // experiment's own seed — on the single-node path it IS the classic
  // scheme, which is what keeps `--nodes=1` bit-identical to the
  // pre-cluster baseline — while rented/extra nodes derive their seeds
  // from their never-reused ordinal (salted away from the tenant-stream
  // MixSeed discipline), so every node's budget-jitter streams are a pure
  // function of the configuration. Captured by pointer: an elastic
  // ClusterScheme keeps the factory for mid-run rentals, long after this
  // function returns (the contract on `catalog`/`indexes`/`config`
  // outliving the scheme is in the header).
  const Catalog* catalog_ptr = &catalog;
  const std::vector<StructureKey>* indexes_ptr = &indexes;
  const ExperimentConfig* config_ptr = &config;
  const auto node_factory = [catalog_ptr, indexes_ptr, config_ptr,
                             multi_tenant](uint32_t ordinal) {
    const ExperimentConfig& config = *config_ptr;
    std::unique_ptr<Scheme> scheme;
    if (config.scheme == SchemeKind::kBypassYield) {
      BypassYieldScheme::Options options;
      if (config.customize_bypass) config.customize_bypass(options);
      scheme = std::make_unique<BypassYieldScheme>(catalog_ptr, options);
    } else {
      EconScheme::Config econ_config;
      switch (config.scheme) {
        case SchemeKind::kEconCol:
          econ_config = EconScheme::EconColConfig();
          break;
        case SchemeKind::kEconFast:
          econ_config = EconScheme::EconFastConfig();
          break;
        default:
          econ_config = EconScheme::EconCheapConfig();
          break;
      }
      constexpr uint64_t kNodeSeedSalt = 0x636c757374657231ull;  // cluster
      econ_config.seed = ordinal == 0
                             ? config.seed
                             : MixSeed(config.seed, kNodeSeedSalt + ordinal);
      if (config.customize_econ) config.customize_econ(econ_config);
      // Tenancy is the experiment's to decide, not the ablation hook's:
      // the event-driven path provisions identities even for one tenant
      // (so its metrics slice carries regret attribution); the classic
      // path stays on the zero-overhead pre-tenancy configuration. The
      // fairness policies ride the same switch — they read tenant
      // attribution, so they only engage on the multi-tenant path (the
      // hook may still tune their ratios/slack/windows). So do the
      // per-tenant budget shapes, which need tenant identities.
      if (multi_tenant) {
        econ_config.tenants = config.tenancy.tenants;
        if (config.tenancy.fair_eviction) {
          econ_config.economy.tenant_weighted_eviction = true;
        }
        if (config.tenancy.admission) {
          econ_config.economy.admission.enabled = true;
        }
        econ_config.tenant_budgets = config.tenancy.tenant_budgets;
      }
      scheme = std::make_unique<EconScheme>(catalog_ptr,
                                            &config.decision_prices,
                                            *indexes_ptr,
                                            std::move(econ_config));
    }
    return scheme;
  };

  if (clustered) {
    return std::make_unique<ClusterScheme>(
        catalog_ptr, &config.decision_prices, config.cluster, node_factory);
  }
  return node_factory(0);
}

uint64_t HashExperimentConfig(const ExperimentConfig& config) {
  persist::Encoder enc;
  enc.PutU8(static_cast<uint8_t>(config.scheme));

  const WorkloadOptions& w = config.workload;
  enc.PutDouble(w.popularity_skew);
  enc.PutU64(w.drift_period);
  enc.PutDouble(w.repeat_probability);
  enc.PutDouble(w.interarrival_seconds);
  enc.PutU8(static_cast<uint8_t>(w.arrival));
  enc.PutDouble(w.selectivity_scale);
  enc.PutU64(w.seed);
  enc.PutU32(w.tenant_id);
  enc.PutU64(w.popularity_offset);

  const TenancyOptions& t = config.tenancy;
  enc.PutU32(t.tenants);
  enc.PutDouble(t.traffic_skew);
  enc.PutBool(t.rotate_template_mix);
  enc.PutBool(t.force_event_path);
  enc.PutBool(t.fair_eviction);
  enc.PutBool(t.admission);
  enc.PutU64(t.tenant_budgets.size());
  for (const TenantBudgetShape& shape : t.tenant_budgets) {
    enc.PutU32(shape.tenant);
    enc.PutDouble(shape.price_scale);
    enc.PutDouble(shape.tmax_scale);
  }

  const ClusterOptions& c = config.cluster;
  enc.PutU32(c.nodes);
  enc.PutBool(c.elastic);
  enc.PutDouble(c.node_rent_multiplier);
  enc.PutDouble(c.migration_recency_seconds);
  enc.PutBool(c.force_cluster_path);
  enc.PutU64(c.elasticity.check_interval_queries);
  enc.PutU32(c.elasticity.sustain_windows);
  enc.PutU32(c.elasticity.cooldown_windows);
  enc.PutDouble(c.elasticity.cold_share);
  enc.PutI64(c.elasticity.amortization_horizon);
  enc.PutU32(c.elasticity.min_nodes);
  enc.PutU32(c.elasticity.max_nodes);

  // SimulatorOptions, minus parallel_threads (thread counts never change
  // the bits) and minus the checkpoint block (a snapshot must be
  // restorable regardless of the cadence that produced it).
  enc.PutU64(config.sim.num_queries);
  EncodePriceList(config.sim.metered_prices, &enc);
  enc.PutU64(config.sim.timeline_stride);

  EncodePriceList(config.decision_prices, &enc);
  enc.PutU64(config.index_candidates);
  enc.PutU64(config.seed);
  return Fnv1a64(enc.buffer());
}

SimMetrics RunExperiment(const Catalog& catalog,
                         const std::vector<QueryTemplate>& templates,
                         const ExperimentConfig& config) {
  Result<SimMetrics> result = RunExperimentChecked(catalog, templates,
                                                   config);
  CLOUDCACHE_CHECK(result.ok());
  return std::move(result).value();
}

Result<SimMetrics> RunExperimentChecked(
    const Catalog& catalog, const std::vector<QueryTemplate>& templates,
    const ExperimentConfig& config) {
  const CheckpointOptions& cp = config.sim.checkpoint;
  const bool restoring = cp.restore != CheckpointOptions::Restore::kNone;
  if ((cp.every > 0 || restoring) && cp.path.empty()) {
    return Status::InvalidArgument(
        "checkpointing requires a snapshot path (--checkpoint-path)");
  }
  if (!restoring) {
    return RunExperimentImpl(catalog, templates, config, nullptr);
  }

  const bool hard = cp.restore == CheckpointOptions::Restore::kHard;
  Result<persist::SnapshotReader> reader =
      persist::SnapshotReader::FromFile(cp.path);
  if (!reader.ok()) {
    if (hard) return reader.status();
    return RunExperimentImpl(catalog, templates, config, nullptr);
  }
  Result<SimMetrics> resumed =
      RunExperimentImpl(catalog, templates, config, &reader.value());
  if (resumed.ok()) return resumed;
  if (hard) return resumed.status();
  // Crash injection is a run outcome, not a restore failure — it must
  // never trigger the fresh-start fallback (nor can it: the persist layer
  // never returns kResourceExhausted).
  if (resumed.status().code() == StatusCode::kResourceExhausted) {
    return resumed.status();
  }
  return RunExperimentImpl(catalog, templates, config, nullptr);
}

std::vector<SimMetrics> RunAllSchemes(
    const Catalog& catalog, const std::vector<QueryTemplate>& templates,
    ExperimentConfig config) {
  SweepSpec spec;
  spec.schemes = PaperSchemes();
  spec.interarrivals = {config.workload.interarrival_seconds};
  // The caller's seeds apply verbatim to every scheme: all four contenders
  // face the identical query stream, as in the paper's paired comparison.
  spec.seed_policy = SweepSpec::SeedPolicy::kFixed;
  spec.base = std::move(config);

  std::vector<SweepResult> sweep =
      RunSweep(catalog, templates, spec, /*n_threads=*/0);  // All cores.

  std::vector<SimMetrics> results;
  results.reserve(sweep.size());
  for (SweepResult& result : sweep) {
    results.push_back(std::move(result.metrics));
  }
  return results;
}

std::vector<double> PaperInterarrivals() { return {1.0, 10.0, 30.0, 60.0}; }

std::vector<SchemeKind> PaperSchemes() {
  return {SchemeKind::kBypassYield, SchemeKind::kEconCol,
          SchemeKind::kEconCheap, SchemeKind::kEconFast};
}

}  // namespace cloudcache
