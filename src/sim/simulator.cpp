#include "src/sim/simulator.h"

#include <cmath>
#include <utility>

#include "src/util/logging.h"

namespace cloudcache {

Simulator::Simulator(const Catalog* catalog, Scheme* scheme,
                     WorkloadGenerator* workload, SimulatorOptions options)
    : catalog_(catalog),
      scheme_(scheme),
      workload_(workload),
      options_(options),
      metered_model_(catalog, &options_.metered_prices) {}

Simulator::Simulator(const Catalog* catalog, Scheme* scheme,
                     std::vector<WorkloadGenerator*> workloads,
                     SimulatorOptions options)
    : catalog_(catalog),
      scheme_(scheme),
      workload_(nullptr),
      tenant_workloads_(std::move(workloads)),
      options_(options),
      metered_model_(catalog, &options_.metered_prices) {
  CLOUDCACHE_CHECK(!tenant_workloads_.empty());
  for (WorkloadGenerator* generator : tenant_workloads_) {
    CLOUDCACHE_CHECK(generator != nullptr);
  }
}

void Simulator::MeterRent(SimTime now, SimMetrics* metrics) {
  const double dt = now - last_meter_time_;
  if (dt <= 0) return;
  last_meter_time_ = now;
  const PriceList& p = options_.metered_prices;

  // Rent is metered in double dollars: per-interval amounts on small
  // configurations can be far below one micro-dollar, and rounding each
  // interval through Money would silently zero them out. The quantities
  // come through the scheme's cluster-aware totals, so a multi-node
  // scheme pays for every node it operates; single-node schemes report
  // their one cache and the arithmetic is exactly the pre-cluster path.
  const double disk_dollars =
      static_cast<double>(scheme_->TotalResidentBytes()) * dt *
      p.disk_byte_second_dollars;
  double reservation_dollars =
      static_cast<double>(scheme_->TotalExtraCpuNodes()) * dt *
      p.cpu_second_dollars * p.cpu_reserve_fraction;
  // Rented cluster nodes (beyond the always-on coordinator) bill at the
  // reservation rate scaled by the cluster's rent multiplier.
  const uint32_t rented = scheme_->RentedNodes();
  if (rented > 0) {
    const double node_rent_dollars =
        static_cast<double>(rented) * dt * p.cpu_second_dollars *
        p.cpu_reserve_fraction * options_.node_rent_multiplier;
    metrics->cluster.node_rent_dollars += node_rent_dollars;
    reservation_dollars += node_rent_dollars;
  }
  metrics->operating_cost.disk_dollars += disk_dollars;
  metrics->operating_cost.cpu_dollars += reservation_dollars;
  // The account charge accumulates fractional micro-dollars and releases
  // them once they round to something chargeable.
  pending_rent_dollars_ += disk_dollars + reservation_dollars;
  const Money charge = Money::FromDollars(pending_rent_dollars_);
  if (!charge.IsZero()) {
    pending_rent_dollars_ -= charge.ToDollars();
    scheme_->ChargeExpenditure(charge, now);
  }
}

void Simulator::FlushResidualRent() {
  if (pending_rent_dollars_ <= 0) return;
  // Round up: the cloud never forgives a fraction it already metered. The
  // overcharge is bounded by one micro-dollar per run, in the account's
  // favor, and it closes the books — final_credit now reflects every
  // dollar the operating-cost breakdown counted.
  const Money charge = Money::FromMicros(static_cast<int64_t>(
      std::ceil(pending_rent_dollars_ * 1e6)));
  pending_rent_dollars_ = 0;
  if (!charge.IsZero()) scheme_->ChargeExpenditure(charge, last_meter_time_);
}

void Simulator::MeterQuery(const Query& query, const ServedQuery& served,
                           SimTime now, SimMetrics* metrics,
                           TenantMetrics* tenant) {
  const PriceList& p = options_.metered_prices;
  ResourceBreakdown bill;
  Money charged;

  if (served.served) {
    // Re-price the executed plan's raw resource usage at metered rates.
    // The estimate stored in `served` was computed under the scheme's own
    // price list, but its physical quantities (seconds, ops, bytes) are
    // price-independent.
    const ExecutionEstimate metered =
        metered_model_.EstimateExecution(query, served.spec);
    bill.cpu_dollars += p.CpuCost(metered.cpu_seconds).ToDollars();
    bill.io_dollars += p.IoCost(metered.io_ops).ToDollars();
    bill.network_dollars += p.NetworkCost(metered.wan_bytes).ToDollars();
    charged += p.CpuCost(metered.cpu_seconds) + p.IoCost(metered.io_ops) +
               p.NetworkCost(metered.wan_bytes);
    metrics->wan_bytes += metered.wan_bytes;
    if (tenant != nullptr) tenant->wan_bytes += metered.wan_bytes;
  }

  // Builds triggered by this query.
  const BuildUsage& usage = served.build_usage;
  if (usage.cpu_seconds > 0 || usage.wan_bytes > 0 || usage.io_ops > 0) {
    bill.cpu_dollars += p.CpuCost(usage.cpu_seconds).ToDollars();
    bill.network_dollars += p.NetworkCost(usage.wan_bytes).ToDollars();
    bill.io_dollars += p.IoCost(usage.io_ops).ToDollars();
    metrics->wan_bytes += usage.wan_bytes;
    if (tenant != nullptr) tenant->wan_bytes += usage.wan_bytes;
    // Build spending was already withdrawn from the scheme's account as an
    // investment (economy schemes), so it is not re-charged there; it is
    // still part of the metered operating cost.
  }
  metrics->operating_cost += bill;
  if (tenant != nullptr) tenant->operating_cost += bill;
  if (!charged.IsZero()) scheme_->ChargeExpenditure(charged, now);
}

void Simulator::ProcessQuery(const Query& query, uint64_t i,
                             SimMetrics* metrics, TenantMetrics* tenant) {
  const SimTime now = query.arrival_time;

  MeterRent(now, metrics);
  const ServedQuery served = scheme_->OnQuery(query, now);
  MeterQuery(query, served, now, metrics, tenant);

  AccountOutcome(served, metrics);
  if (served.served) {
    metrics->response_sketch.Add(served.execution.time_seconds);
  }
  if (tenant != nullptr) AccountOutcome(served, tenant);

  if (options_.timeline_stride != 0 &&
      (i % options_.timeline_stride == 0 ||
       i + 1 == options_.num_queries)) {
    metrics->cost_over_time.Add(now, metrics->operating_cost.Total());
    metrics->credit_over_time.Add(now, scheme_->credit().ToDollars());
  }
}

SimMetrics Simulator::Run() {
  SimMetrics metrics =
      tenant_workloads_.empty() ? RunSingleStream() : RunMultiTenant();
  // Cluster shape, if the scheme operates one (no-op default leaves the
  // classic single-node runs without a cluster footprint). The simulator
  // already accumulated cluster.node_rent_dollars while metering.
  scheme_->DescribeCluster(&metrics.cluster);
  return metrics;
}

SimMetrics Simulator::RunSingleStream() {
  SimMetrics metrics;
  metrics.scheme_name = scheme_->name();
  last_meter_time_ = workload_->PeekNextArrival();

  // Single-stream discipline: the paper serves queries one at a time in
  // arrival order, so the generator IS the schedule and the loop needs no
  // event queue — queries are processed directly as they are drawn. The
  // multi-tenant path below is the queued generalization.
  for (uint64_t i = 0; i < options_.num_queries; ++i) {
    const Query query = workload_->Next();
    ProcessQuery(query, i, &metrics, nullptr);
  }
  FlushResidualRent();

  metrics.final_credit = scheme_->credit();
  metrics.final_resident_bytes = scheme_->TotalResidentBytes();
  metrics.final_extra_nodes = scheme_->TotalExtraCpuNodes();
  return metrics;
}

SimMetrics Simulator::RunMultiTenant() {
  SimMetrics metrics;
  metrics.scheme_name = scheme_->name();
  metrics.tenants.resize(tenant_workloads_.size());
  for (size_t t = 0; t < metrics.tenants.size(); ++t) {
    metrics.tenants[t].tenant_id = static_cast<uint32_t>(t);
  }

  // Seed the queue with every tenant's first arrival. From here on the
  // queue always holds exactly one event per tenant — its next arrival —
  // so a pop picks the globally earliest query, with equal timestamps
  // resolved in tenant order by SimEvent::tie regardless of the order the
  // events were pushed in. The merged schedule is therefore a pure
  // function of the tenant generators, never of heap internals.
  EventQueue queue;
  for (size_t t = 0; t < tenant_workloads_.size(); ++t) {
    SimEvent event;
    event.time = tenant_workloads_[t]->PeekNextArrival();
    event.kind = SimEvent::Kind::kArrival;
    event.payload = t;
    event.tie = static_cast<uint32_t>(t);
    queue.Push(event);
  }
  last_meter_time_ = queue.Top().time;

  for (uint64_t i = 0; i < options_.num_queries; ++i) {
    const SimEvent event = queue.Pop();
    const size_t t = static_cast<size_t>(event.payload);
    WorkloadGenerator* generator = tenant_workloads_[t];
    const Query query = generator->Next();
    // The event was scheduled at the generator's peeked arrival; drawing
    // the query must not move it.
    CLOUDCACHE_CHECK(query.arrival_time == event.time);

    SimEvent next;
    next.time = generator->PeekNextArrival();
    next.kind = SimEvent::Kind::kArrival;
    next.payload = t;
    next.tie = static_cast<uint32_t>(t);
    queue.Push(next);

    ProcessQuery(query, i, &metrics, &metrics.tenants[t]);
  }
  FlushResidualRent();

  metrics.final_credit = scheme_->credit();
  metrics.final_resident_bytes = scheme_->TotalResidentBytes();
  metrics.final_extra_nodes = scheme_->TotalExtraCpuNodes();
  for (size_t t = 0; t < metrics.tenants.size(); ++t) {
    metrics.tenants[t].final_regret =
        scheme_->TenantRegret(static_cast<uint32_t>(t));
  }
  metrics.fairness = ComputeFairness(metrics.tenants);
  return metrics;
}

}  // namespace cloudcache
