// Ablation A6: user budget-function shape (Fig. 1).
//
// The paper's experiments fix a step function; the model allows any
// non-increasing shape. Shapes that discount slow service steeply (convex)
// push more interactions into case A (nothing affordable), starve the
// cloud of profit, and shift regret toward cost-saving structures;
// deadline-style concave budgets behave like steps until the cliff.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/sim/report.h"
#include "src/util/logging.h"

int main(int argc, char** argv) {
  using namespace cloudcache;
  using namespace cloudcache::bench;

  const BenchOptions options = ParseArgs(argc, argv, /*default=*/40'000);
  const PaperSetup setup = MakePaperSetup(options);

  struct Shape {
    BudgetModelOptions::Shape shape;
    const char* name;
  };
  const std::vector<Shape> shapes = {
      {BudgetModelOptions::Shape::kStep, "step"},
      {BudgetModelOptions::Shape::kLinear, "linear"},
      {BudgetModelOptions::Shape::kConvex, "convex"},
      {BudgetModelOptions::Shape::kConcave, "concave"},
  };
  std::vector<SweepVariant> variants;
  for (const Shape& shape : shapes) {
    variants.push_back(
        {shape.name, [shape](ExperimentConfig& config) {
           config.customize_econ = [shape](EconScheme::Config& econ) {
             econ.economy.initial_credit = Money::FromDollars(200);
             econ.economy.model_build_latency = false;
             econ.economy.regret_fraction_a = 0.02;
             econ.budget.shape = shape.shape;
           };
         }});
  }
  ExperimentConfig base = PaperConfig(options, 10.0);
  base.scheme = SchemeKind::kEconCheap;
  const std::vector<SweepResult> results = RunVariantSweep(
      setup, options, base, {SchemeKind::kEconCheap}, std::move(variants));

  TableWriter table({"shape", "mean_resp_s", "op_cost_$", "profit_$",
                     "case_A", "case_B", "case_C", "investments"});
  for (size_t v = 0; v < shapes.size(); ++v) {
    const SimMetrics& m = results[v].metrics;
    CLOUDCACHE_CHECK(table
                         .AddRow({shapes[v].name,
                                  FormatDouble(m.MeanResponse(), 3),
                                  FormatDouble(m.operating_cost.Total(), 2),
                                  FormatDouble(m.profit.ToDollars(), 2),
                                  std::to_string(m.case_a),
                                  std::to_string(m.case_b),
                                  std::to_string(m.case_c),
                                  std::to_string(m.investments)})
                         .ok());
  }
  std::puts("Ablation A6 — user budget shape (Fig. 1), econ-cheap @ 10s");
  EmitTable(table, options);
  return 0;
}
