// SDSS survey scenario: the paper's motivating use case on an astronomy
// schema instead of TPC-H.
//
// A public sky-survey archive (photoobj/specobj/field/run) serves cone
// searches, color cuts and spectroscopic slices to a community of
// scientists. The cloud cache self-tunes under this workload; the example
// prints the evolution of the cache and the per-template service quality.
//
//   ./sdss_survey [queries]

#include <cstdio>
#include <cstdlib>
#include <map>

#include "src/util/logging.h"
#include "src/baseline/scheme.h"
#include "src/catalog/sdss.h"
#include "src/query/templates.h"
#include "src/sim/report.h"
#include "src/structure/index_advisor.h"
#include "src/util/stats.h"
#include "src/workload/generator.h"

int main(int argc, char** argv) {
  using namespace cloudcache;
  const uint64_t num_queries =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 30'000;

  const Catalog catalog = MakeSdssCatalog();
  std::printf("archive: %zu tables, %.1f GB\n", catalog.num_tables(),
              static_cast<double>(catalog.TotalBytes()) / 1e9);

  Result<std::vector<ResolvedTemplate>> resolved =
      ResolveTemplates(catalog, MakeSdssTemplates());
  CLOUDCACHE_CHECK(resolved.ok());

  WorkloadOptions workload_options;
  workload_options.interarrival_seconds = 5.0;
  workload_options.popularity_skew = 1.2;   // Hot sky regions.
  workload_options.repeat_probability = 0.4;  // Scripted query bursts.
  WorkloadGenerator workload(&catalog, *resolved, workload_options);

  const PriceList prices = PriceList::AmazonEc2_2009();
  EconScheme::Config config = EconScheme::EconCheapConfig();
  config.economy.initial_credit = Money::FromDollars(50);
  config.economy.regret_fraction_a = 0.02;
  config.economy.model_build_latency = false;
  EconScheme scheme(&catalog, &prices,
                    RecommendIndexes(catalog, *resolved, 40),
                    std::move(config));

  std::map<int, RunningStats> per_template;
  std::map<int, RunningStats> per_template_tail;
  uint64_t investments = 0;

  for (uint64_t i = 0; i < num_queries; ++i) {
    const Query query = workload.Next();
    const ServedQuery served = scheme.OnQuery(query, query.arrival_time);
    if (served.served) {
      per_template[query.template_id].Add(served.execution.time_seconds);
      if (i >= num_queries / 2) {
        per_template_tail[query.template_id].Add(
            served.execution.time_seconds);
      }
    }
    if (served.investments > 0) {
      investments += served.investments;
      if (investments <= 12) {
        std::printf("t=%8.0fs  query %6llu: built %u structure(s)\n",
                    query.arrival_time,
                    static_cast<unsigned long long>(i), served.investments);
      }
    }
  }

  std::puts("\nper-template response time, first half vs second half:");
  std::puts("  template          all-run mean   warmed mean");
  for (const auto& [tmpl, stats] : per_template) {
    const RunningStats& tail = per_template_tail[tmpl];
    std::printf("  %-16s %9.3fs    %9.3fs\n",
                (*resolved)[static_cast<size_t>(tmpl)].name.c_str(),
                stats.mean(), tail.mean());
  }

  std::printf("\n%llu structures built; final cache %.1f GB; credit %s\n",
              static_cast<unsigned long long>(investments),
              static_cast<double>(
                  scheme.engine().cache().resident_bytes()) /
                  1e9,
              scheme.credit().ToString().c_str());
  return 0;
}
