#include "src/obs/stage_profile.h"

#include <cstdio>

namespace cloudcache {
namespace obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kEnumerate:
      return "enumerate";
    case Stage::kSkyline:
      return "skyline";
    case Stage::kPrice:
      return "price";
    case Stage::kSettle:
      return "settle";
  }
  return "?";
}

StageProfiler& StageProfiler::Instance() {
  static StageProfiler instance;
  return instance;
}

void StageProfiler::Reset() {
  for (int i = 0; i < kNumStages; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
    nanos_[i].store(0, std::memory_order_relaxed);
  }
}

std::string StageProfiler::FormatTable() const {
  uint64_t total_ns = 0;
  for (int i = 0; i < kNumStages; ++i) {
    total_ns += nanos(static_cast<Stage>(i));
  }
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-10s %12s %12s %10s %7s\n", "stage",
                "calls", "total_ms", "ns/call", "share");
  out += line;
  for (int i = 0; i < kNumStages; ++i) {
    const Stage stage = static_cast<Stage>(i);
    const uint64_t n = count(stage);
    const uint64_t ns = nanos(stage);
    std::snprintf(line, sizeof(line), "%-10s %12llu %12.3f %10.0f %6.1f%%\n",
                  StageName(stage), static_cast<unsigned long long>(n),
                  static_cast<double>(ns) / 1e6,
                  n ? static_cast<double>(ns) / static_cast<double>(n) : 0.0,
                  total_ns ? 100.0 * static_cast<double>(ns) /
                                 static_cast<double>(total_ns)
                           : 0.0);
    out += line;
  }
  return out;
}

}  // namespace obs
}  // namespace cloudcache
