#include "src/sim/experiment.h"

#include <utility>

#include "src/sim/sweep.h"
#include "src/structure/index_advisor.h"
#include "src/util/logging.h"

namespace cloudcache {

SimMetrics RunExperiment(const Catalog& catalog,
                         const std::vector<QueryTemplate>& templates,
                         const ExperimentConfig& config) {
  Result<std::vector<ResolvedTemplate>> resolved =
      ResolveTemplates(catalog, templates);
  CLOUDCACHE_CHECK(resolved.ok());

  const std::vector<StructureKey> indexes =
      RecommendIndexes(catalog, *resolved, config.index_candidates);

  std::unique_ptr<Scheme> scheme;
  if (config.scheme == SchemeKind::kBypassYield) {
    BypassYieldScheme::Options options;
    if (config.customize_bypass) config.customize_bypass(options);
    scheme = std::make_unique<BypassYieldScheme>(&catalog, options);
  } else {
    EconScheme::Config econ_config;
    switch (config.scheme) {
      case SchemeKind::kEconCol:
        econ_config = EconScheme::EconColConfig();
        break;
      case SchemeKind::kEconFast:
        econ_config = EconScheme::EconFastConfig();
        break;
      default:
        econ_config = EconScheme::EconCheapConfig();
        break;
    }
    econ_config.seed = config.seed;
    if (config.customize_econ) config.customize_econ(econ_config);
    scheme = std::make_unique<EconScheme>(&catalog, &config.decision_prices,
                                          indexes, std::move(econ_config));
  }

  WorkloadGenerator workload(&catalog, *resolved, config.workload);
  Simulator simulator(&catalog, scheme.get(), &workload, config.sim);
  return simulator.Run();
}

std::vector<SimMetrics> RunAllSchemes(
    const Catalog& catalog, const std::vector<QueryTemplate>& templates,
    ExperimentConfig config) {
  SweepSpec spec;
  spec.schemes = PaperSchemes();
  spec.interarrivals = {config.workload.interarrival_seconds};
  // The caller's seeds apply verbatim to every scheme: all four contenders
  // face the identical query stream, as in the paper's paired comparison.
  spec.seed_policy = SweepSpec::SeedPolicy::kFixed;
  spec.base = std::move(config);

  std::vector<SweepResult> sweep =
      RunSweep(catalog, templates, spec, /*n_threads=*/0);  // All cores.

  std::vector<SimMetrics> results;
  results.reserve(sweep.size());
  for (SweepResult& result : sweep) {
    results.push_back(std::move(result.metrics));
  }
  return results;
}

std::vector<double> PaperInterarrivals() { return {1.0, 10.0, 30.0, 60.0}; }

std::vector<SchemeKind> PaperSchemes() {
  return {SchemeKind::kBypassYield, SchemeKind::kEconCol,
          SchemeKind::kEconCheap, SchemeKind::kEconFast};
}

}  // namespace cloudcache
