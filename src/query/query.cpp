#include "src/query/query.h"

#include <algorithm>
#include <cmath>

namespace cloudcache {

double Query::CombinedSelectivity() const {
  double sel = 1.0;
  for (const Predicate& p : predicates) sel *= p.selectivity;
  return sel;
}

uint64_t Query::ColumnFingerprint() const {
  uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis.
  const auto mix = [&hash](uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;  // FNV prime.
  };
  for (ColumnId col : output_columns) mix(col);
  mix(~0ull);  // Separator: outputs vs predicates.
  for (const Predicate& p : predicates) mix(p.column);
  return hash == 0 ? 1 : hash;  // 0 is the "never computed" sentinel.
}

const std::vector<ColumnId>& Query::AccessedColumns() const {
  const uint64_t fingerprint = ColumnFingerprint();
  if (memo_fingerprint_ != fingerprint) {
    accessed_memo_.assign(output_columns.begin(), output_columns.end());
    for (const Predicate& p : predicates) {
      accessed_memo_.push_back(p.column);
    }
    std::sort(accessed_memo_.begin(), accessed_memo_.end());
    accessed_memo_.erase(
        std::unique(accessed_memo_.begin(), accessed_memo_.end()),
        accessed_memo_.end());
    memo_fingerprint_ = fingerprint;
  }
  return accessed_memo_;
}

uint64_t Query::ScanBytes(const Catalog& catalog) const {
  uint64_t bytes = 0;
  for (ColumnId col : AccessedColumns()) bytes += catalog.ColumnBytes(col);
  return bytes;
}

Status Query::Validate(const Catalog& catalog) const {
  if (table >= catalog.num_tables()) {
    return Status::OutOfRange("table id " + std::to_string(table));
  }
  if (output_columns.empty()) {
    return Status::InvalidArgument("query has no output columns");
  }
  auto check_column = [&](ColumnId col) -> Status {
    if (col >= catalog.num_columns()) {
      return Status::OutOfRange("column id " + std::to_string(col));
    }
    if (catalog.column(col).table_id != table) {
      return Status::InvalidArgument(
          "column " + catalog.column(col).name +
          " does not belong to driving table " + catalog.table(table).name);
    }
    return Status::OK();
  };
  for (ColumnId col : output_columns) CLOUDCACHE_RETURN_IF_ERROR(check_column(col));
  for (const Predicate& p : predicates) {
    CLOUDCACHE_RETURN_IF_ERROR(check_column(p.column));
    if (p.selectivity <= 0.0 || p.selectivity > 1.0) {
      return Status::InvalidArgument("predicate selectivity outside (0, 1]");
    }
  }
  if (cpu_multiplier < 1.0) {
    return Status::InvalidArgument("cpu_multiplier below 1");
  }
  if (parallel_fraction < 0.0 || parallel_fraction > 1.0) {
    return Status::InvalidArgument("parallel_fraction outside [0, 1]");
  }
  if (result_rows > catalog.table(table).row_count) {
    return Status::InvalidArgument("result_rows exceeds table rows");
  }
  return Status::OK();
}

void DeriveResultShape(const Catalog& catalog, double row_limit_fraction,
                       Query* query) {
  const Table& table = catalog.table(query->table);
  const double sel = query->CombinedSelectivity();
  const double rows = static_cast<double>(table.row_count) * sel *
                      std::clamp(row_limit_fraction, 0.0, 1.0);
  query->result_rows =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::llround(rows)));
  query->result_rows = std::min(query->result_rows, table.row_count);
  uint64_t row_width = 0;
  for (ColumnId col : query->output_columns) {
    row_width += catalog.column(col).width_bytes;
  }
  query->result_bytes = query->result_rows * row_width;
}

}  // namespace cloudcache
