// Ablation A3: WAN throughput between cache and back-end.
//
// The paper fixes t = 25 Mbps (the maximum SDSS inter-node throughput
// [24]). Faster links shrink both the latency and the dollar advantage of
// caching: transfers cost the same per byte but finish sooner and tie up
// less fn-CPU, so back-end execution keeps up with the cache and the
// economy rationally builds less. The sweep locates that crossover.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/sim/report.h"
#include "src/util/logging.h"

int main(int argc, char** argv) {
  using namespace cloudcache;
  using namespace cloudcache::bench;

  const BenchOptions options = ParseArgs(argc, argv, /*default=*/40'000);
  const PaperSetup setup = MakePaperSetup(options);

  const std::vector<double> mbps = {5, 25, 100, 400, 1000};
  TableWriter table({"wan_mbps", "scheme", "mean_resp_s", "op_cost_$",
                     "net_$", "hit_rate", "investments"});
  for (double rate : mbps) {
    for (SchemeKind kind :
         {SchemeKind::kBypassYield, SchemeKind::kEconCheap}) {
      ExperimentConfig config = PaperConfig(options, 10.0);
      config.scheme = kind;
      config.decision_prices.wan_mbps = rate;
      config.sim.metered_prices.wan_mbps = rate;
      const SimMetrics m =
          RunExperiment(setup.catalog, setup.templates, config);
      CLOUDCACHE_CHECK(
          table
              .AddRow({FormatDouble(rate, 0), m.scheme_name,
                       FormatDouble(m.MeanResponse(), 3),
                       FormatDouble(m.operating_cost.Total(), 2),
                       FormatDouble(m.operating_cost.network_dollars, 2),
                       FormatDouble(m.CacheHitRate(), 3),
                       std::to_string(m.investments)})
              .ok());
      std::fprintf(stderr, "  %4.0f Mbps %s done\n", rate,
                   m.scheme_name.c_str());
    }
  }
  std::puts("Ablation A3 — WAN throughput sweep @ 10s interval");
  EmitTable(table, options);
  return 0;
}
