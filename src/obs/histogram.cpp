#include "src/obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace cloudcache {
namespace obs {

namespace {
// Covered value range, as exact powers of two (hex-float literals keep
// them compile-time constants without relying on a constexpr ldexp).
constexpr double kMinValue = 0x1p-30;
constexpr double kMaxValue = 0x1p+30;
}  // namespace

size_t Histogram::BucketIndex(double x) {
  // x = f * 2^e with f in [0.5, 1): the octave is e-1, and f*64 - 32 is
  // the exact linear position within it scaled to [0, 32). All arithmetic
  // is power-of-two multiplies and integer truncation — no transcendental
  // calls, so every platform buckets every double identically.
  int e = 0;
  const double f = std::frexp(x, &e);
  const int octave = (e - 1) - kMinExponent;
  int sub = static_cast<int>(f * 64.0 - 32.0);
  if (sub > kSubBuckets - 1) sub = kSubBuckets - 1;
  return static_cast<size_t>(octave) * kSubBuckets +
         static_cast<size_t>(sub);
}

double Histogram::BucketLower(size_t index) {
  const int octave = static_cast<int>(index) / kSubBuckets;
  const int sub = static_cast<int>(index) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets,
                    kMinExponent + octave);
}

double Histogram::BucketUpper(size_t index) {
  const int octave = static_cast<int>(index) / kSubBuckets;
  const int sub = static_cast<int>(index) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets,
                    kMinExponent + octave);
}

void Histogram::Add(double x) {
  if (x < 0) x = 0;
  ++count_;
  sum_ += x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  if (x < kMinValue) {
    ++underflow_;
  } else if (x >= kMaxValue) {
    ++overflow_;
  } else {
    ++buckets_[BucketIndex(x)];
  }
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  const double target = q * static_cast<double>(count_);
  // Underflowed samples sit below every bucket; they contribute at the
  // exact minimum (which is where they were observed, give or take less
  // than a nanosecond).
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return min_;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t n = buckets_[i];
    if (n == 0) continue;
    const double next = cum + static_cast<double>(n);
    if (next >= target) {
      const double frac = (target - cum) / static_cast<double>(n);
      const double lower = BucketLower(i);
      const double value = lower + frac * (BucketUpper(i) - lower);
      return std::clamp(value, min_, max_);
    }
    cum = next;
  }
  return max_;
}

void Histogram::SaveState(persist::Encoder* enc) const {
  enc->PutU64(count_);
  enc->PutU64(underflow_);
  enc->PutU64(overflow_);
  enc->PutDouble(sum_);
  enc->PutDouble(min_);
  enc->PutDouble(max_);
  // Sparse bucket encoding: latency histograms of a run occupy a handful
  // of octaves, so (index, count) pairs keep snapshots small.
  uint64_t nonzero = 0;
  for (uint64_t b : buckets_) nonzero += b != 0 ? 1 : 0;
  enc->PutU64(nonzero);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    enc->PutU32(static_cast<uint32_t>(i));
    enc->PutU64(buckets_[i]);
  }
}

Status Histogram::RestoreState(persist::Decoder* dec) {
  Histogram fresh;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&fresh.count_));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&fresh.underflow_));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&fresh.overflow_));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&fresh.sum_));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&fresh.min_));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&fresh.max_));
  uint64_t nonzero = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&nonzero));
  uint64_t in_buckets = 0;
  uint32_t prev = 0;
  for (uint64_t k = 0; k < nonzero; ++k) {
    uint32_t index = 0;
    uint64_t value = 0;
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&index));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&value));
    if (index >= kNumBuckets || value == 0 || (k > 0 && index <= prev)) {
      return Status::InvalidArgument(
          "corrupt histogram bucket entry in snapshot");
    }
    fresh.buckets_[index] = value;
    in_buckets += value;
    prev = index;
  }
  if (in_buckets + fresh.underflow_ + fresh.overflow_ != fresh.count_) {
    return Status::InvalidArgument(
        "histogram bucket counts do not sum to the sample count");
  }
  *this = std::move(fresh);
  return Status::OK();
}

bool BitIdentical(const Histogram& a, const Histogram& b) {
  const auto bits = [](double x) {
    uint64_t v = 0;
    std::memcpy(&v, &x, sizeof(v));
    return v;
  };
  return a.buckets_ == b.buckets_ && a.count_ == b.count_ &&
         a.underflow_ == b.underflow_ && a.overflow_ == b.overflow_ &&
         bits(a.sum_) == bits(b.sum_) && bits(a.min_) == bits(b.min_) &&
         bits(a.max_) == bits(b.max_);
}

}  // namespace obs
}  // namespace cloudcache
