#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <vector>

#include "src/structure/structure.h"
#include "src/util/units.h"

namespace cloudcache {

/// LRU pool of *candidate* structures.
///
/// "The cloud maintains a pool of structures relevant to the queries in the
/// recent past. … These structures are garbage collected using LRU policy,
/// so that the structure cache can be searched and processed efficiently
/// for each incoming query plan." (Section IV-B)
///
/// The pool bounds how many hypothetical structures the economy tracks
/// regret for; when a candidate falls off the cold end, its accumulated
/// regret is forfeited (the eviction callback in the economy clears the
/// ledger entry). Resident structures are tracked by CacheState, not here.
class CandidatePool {
 public:
  /// `capacity` = maximum number of candidates tracked; must be >= 1.
  explicit CandidatePool(size_t capacity);

  /// Marks `id` as recently relevant, inserting it if new. Returns the
  /// candidates evicted to make room (possibly empty). The returned
  /// reference points at an internal buffer that the next Touch overwrites
  /// — consume it before touching again. Touching an id already in the
  /// pool (the per-query common case) allocates nothing.
  const std::vector<StructureId>& Touch(StructureId id, SimTime now);

  /// Removes `id` from the pool (e.g. because it was just built).
  void Erase(StructureId id);

  bool Contains(StructureId id) const;
  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }

  /// Pool contents, most recently used first.
  std::vector<StructureId> MruOrder() const;

 private:
  struct Entry {
    StructureId id;
    SimTime last_touch;
  };

  size_t capacity_;
  std::list<Entry> entries_;  // Front = most recently used.
  std::unordered_map<StructureId, std::list<Entry>::iterator> index_;
  std::vector<StructureId> evicted_;  // Touch's reused out-buffer.
};

}  // namespace cloudcache
