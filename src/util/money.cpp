#include "src/util/money.h"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace cloudcache {

Money Money::FromDollars(double dollars) {
  return Money(static_cast<int64_t>(std::llround(dollars * 1e6)));
}

Money Money::operator*(double factor) const {
  return Money(static_cast<int64_t>(
      std::llround(static_cast<double>(micros_) * factor)));
}

std::string Money::ToString() const {
  int64_t abs = micros_ < 0 ? -micros_ : micros_;
  int64_t whole = abs / 1'000'000;
  int64_t frac = abs % 1'000'000;
  char buf[48];
  if (frac % 10'000 == 0) {
    // Cent-exact: print two decimals.
    std::snprintf(buf, sizeof(buf), "%s$%lld.%02lld", micros_ < 0 ? "-" : "",
                  static_cast<long long>(whole),
                  static_cast<long long>(frac / 10'000));
  } else {
    std::snprintf(buf, sizeof(buf), "%s$%lld.%06lld", micros_ < 0 ? "-" : "",
                  static_cast<long long>(whole),
                  static_cast<long long>(frac));
  }
  return buf;
}

std::ostream& operator<<(std::ostream& os, Money money) {
  return os << money.ToString();
}

Money EvenShare(Money total, int64_t count, int64_t share_index) {
  int64_t base = total.micros() / count;
  int64_t remainder = total.micros() % count;
  // Remainder micro-dollars go to the lowest-index shares. For negative
  // totals the C++ remainder is negative, which subtracts one micro-dollar
  // from the leading shares instead; the shares still sum to `total`.
  int64_t extra_unit = remainder >= 0 ? 1 : -1;
  int64_t extras = remainder >= 0 ? remainder : -remainder;
  return Money::FromMicros(base + (share_index < extras ? extra_unit : 0));
}

}  // namespace cloudcache
