#include "src/cache/maintenance.h"

#include <algorithm>
#include <vector>

#include "src/util/logging.h"

namespace cloudcache {

void MaintenanceLedger::Register(StructureId id, const StructureKey& key,
                                 SimTime now, Money build_cost,
                                 double failure_scale) {
  CLOUDCACHE_CHECK(!IsTracked(id));
  CLOUDCACHE_CHECK_GE(failure_scale, 1.0);
  clocks_[id] = Clock{key, now, build_cost, failure_scale,
                      StructureBytes(model_->catalog(), key)};
}

double MaintenanceLedger::FailureScale(StructureId id) const {
  auto it = clocks_.find(id);
  return it == clocks_.end() ? 1.0 : it->second.failure_scale;
}

Money MaintenanceLedger::BuildCostOf(StructureId id) const {
  auto it = clocks_.find(id);
  CLOUDCACHE_CHECK(it != clocks_.end());
  return it->second.build_cost;
}

Money MaintenanceLedger::Unregister(StructureId id, SimTime now) {
  auto it = clocks_.find(id);
  CLOUDCACHE_CHECK(it != clocks_.end());
  const Money written_off =
      PriceGap(it->second, std::max(0.0, now - it->second.paid_until));
  clocks_.erase(it);
  return written_off;
}

Money MaintenanceLedger::Owed(StructureId id, SimTime now) const {
  auto it = clocks_.find(id);
  CLOUDCACHE_CHECK(it != clocks_.end());
  return PriceGap(it->second, std::max(0.0, now - it->second.paid_until));
}

Money MaintenanceLedger::OwedCapped(StructureId id, SimTime now,
                                    double cap_seconds) const {
  auto it = clocks_.find(id);
  CLOUDCACHE_CHECK(it != clocks_.end());
  const double gap = std::max(0.0, now - it->second.paid_until);
  return PriceGap(it->second, std::min(gap, cap_seconds));
}

Money MaintenanceLedger::Pay(StructureId id, SimTime now,
                             double cap_seconds) {
  auto it = clocks_.find(id);
  CLOUDCACHE_CHECK(it != clocks_.end());
  const double gap = std::max(0.0, now - it->second.paid_until);
  const double covered = std::min(gap, cap_seconds);
  const Money collected = PriceGap(it->second, covered);
  it->second.paid_until += covered;
  return collected;
}

void MaintenanceLedger::SaveState(persist::Encoder* enc) const {
  std::vector<StructureId> ids;
  ids.reserve(clocks_.size());
  for (const auto& [id, clock] : clocks_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  enc->PutU64(ids.size());
  for (StructureId id : ids) {
    const Clock& clock = clocks_.at(id);
    enc->PutU32(id);
    enc->PutDouble(clock.paid_until);
    enc->PutMoney(clock.build_cost);
    enc->PutDouble(clock.failure_scale);
  }
}

Status MaintenanceLedger::RestoreState(persist::Decoder* dec,
                                       const StructureRegistry& registry) {
  clocks_.clear();
  uint64_t count = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&count));
  for (uint64_t i = 0; i < count; ++i) {
    StructureId id = 0;
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&id));
    if (id >= registry.size()) {
      return Status::InvalidArgument(
          "snapshot maintenance clock references an unknown structure");
    }
    if (clocks_.count(id) > 0) {
      return Status::InvalidArgument(
          "snapshot maintenance ledger repeats structure id " +
          std::to_string(id));
    }
    Clock clock;
    clock.key = registry.key(id);
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&clock.paid_until));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadMoney(&clock.build_cost));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&clock.failure_scale));
    if (!(clock.failure_scale >= 1.0)) {
      return Status::InvalidArgument(
          "snapshot maintenance clock has a failure scale below 1.0");
    }
    clock.bytes = registry.bytes(id);
    clocks_.emplace(id, std::move(clock));
  }
  return Status::OK();
}

}  // namespace cloudcache
