#include "src/econ/regret.h"

#include <algorithm>

#include "src/util/logging.h"

namespace cloudcache {

void RegretLedger::Add(StructureId id, Money amount) {
  CLOUDCACHE_CHECK_GE(amount.micros(), 0);
  if (amount.IsZero()) return;
  regret_[id] += amount;
  sorted_stale_ = true;
}

void RegretLedger::Distribute(const std::vector<StructureId>& structures,
                              Money total) {
  if (structures.empty() || total.IsZero()) return;
  const auto count = static_cast<int64_t>(structures.size());
  for (int64_t i = 0; i < count; ++i) {
    Add(structures[static_cast<size_t>(i)], EvenShare(total, count, i));
  }
}

Money RegretLedger::Get(StructureId id) const {
  auto it = regret_.find(id);
  return it == regret_.end() ? Money() : it->second;
}

Money RegretLedger::Clear(StructureId id) {
  auto it = regret_.find(id);
  if (it == regret_.end()) return Money();
  const Money forfeited = it->second;
  regret_.erase(it);
  if (!forfeited.IsZero()) sorted_stale_ = true;
  return forfeited;
}

void RegretLedger::Subtract(StructureId id, Money amount) {
  CLOUDCACHE_CHECK_GE(amount.micros(), 0);
  if (amount.IsZero()) return;
  auto it = regret_.find(id);
  CLOUDCACHE_CHECK(it != regret_.end());
  CLOUDCACHE_CHECK_GE(it->second.micros(), amount.micros());
  it->second -= amount;
  if (it->second.IsZero()) regret_.erase(it);
  sorted_stale_ = true;
}

Money RegretLedger::Total() const {
  Money total;
  for (const auto& [id, amount] : regret_) total += amount;
  return total;
}

const std::vector<std::pair<StructureId, Money>>&
RegretLedger::NonZeroDescending() const {
  if (sorted_stale_) {
    sorted_.clear();
    for (const auto& entry : regret_) {
      if (!entry.second.IsZero()) sorted_.push_back(entry);
    }
    std::sort(sorted_.begin(), sorted_.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    sorted_stale_ = false;
  }
  return sorted_;
}

}  // namespace cloudcache
