#include "src/plan/skyline.h"

#include <algorithm>

#include "src/util/slot_pool.h"

namespace cloudcache {

namespace {

/// The one definition of skyline dominance, shared by both entry points:
/// streams the packed keys through a Pareto frontier kept sorted by
/// ascending time / strictly descending price, then invokes `keep(idx)`
/// for the final frontier in ascending-time order. A key survives iff its
/// price is strictly below every strictly-faster plan's minimum price and
/// it is the (price, index)-minimum of its equal-time group; keys arrive
/// in ascending plan index, so price ties within a time group keep the
/// earliest plan (stable). Money comparison is int64 comparison, so the
/// surviving set matches comparing TimeSeconds() and Price() on the
/// plans. This emits exactly the set a (time, price, index) sort-and-scan
/// would, in the same order, but the frontier stays a handful of entries
/// while the input is tens of plans — linear insertion over it beats
/// sorting the whole key array every query.
template <typename KeepFn>
void ScanSkyline(const std::vector<SkylineScratch::Key>& keys,
                 std::vector<SkylineScratch::Key>* frontier, KeepFn&& keep) {
  frontier->clear();
  for (const SkylineScratch::Key& key : keys) {
    // First frontier slot at or past this key's time. Everything before
    // `pos` is strictly faster; prices strictly fall with time, so the
    // entry at pos-1 carries the minimum price among faster survivors.
    size_t pos = 0;
    while (pos < frontier->size() && (*frontier)[pos].time < key.time) ++pos;
    if (pos > 0 && (*frontier)[pos - 1].price <= key.price) {
      continue;  // A faster plan is no more expensive: dominated.
    }
    if (pos < frontier->size() && (*frontier)[pos].time == key.time &&
        (*frontier)[pos].price <= key.price) {
      continue;  // Its time group already has a (price, index)-smaller key.
    }
    // The key survives; it evicts every no-faster entry that is now no
    // cheaper (for an equal-time entry that means strictly pricier — the
    // group-first changes hands).
    size_t end = pos;
    while (end < frontier->size() && (*frontier)[end].price >= key.price) {
      ++end;
    }
    if (end == pos) {
      frontier->insert(frontier->begin() + pos, key);
    } else {
      (*frontier)[pos] = key;
      frontier->erase(frontier->begin() + pos + 1, frontier->begin() + end);
    }
  }
  for (const SkylineScratch::Key& key : *frontier) keep(key.index);
}

/// Partitions `in` into packed sort keys in one pass: existing plans'
/// keys into `existing`, hypothetical plans' into `possible`, each in
/// ascending plan index (as stability requires).
void FillPartitions(const PlanSet& in, std::vector<SkylineScratch::Key>* existing,
                    std::vector<SkylineScratch::Key>* possible) {
  existing->clear();
  possible->clear();
  for (size_t i = 0; i < in.plans.size(); ++i) {
    const QueryPlan& plan = in.plans[i];
    (plan.IsExisting() ? existing : possible)
        ->push_back(SkylineScratch::Key{plan.TimeSeconds(),
                                        plan.Price().micros(), i});
  }
}

}  // namespace

std::vector<size_t> SkylineIndices(const std::vector<QueryPlan>& plans) {
  std::vector<SkylineScratch::Key> keys;
  keys.reserve(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    keys.push_back(SkylineScratch::Key{plans[i].TimeSeconds(),
                                       plans[i].Price().micros(), i});
  }
  std::vector<size_t> skyline;
  std::vector<SkylineScratch::Key> frontier;
  ScanSkyline(keys, &frontier, [&](size_t idx) { skyline.push_back(idx); });
  return skyline;
}

void SkylineFilterInto(const PlanSet& in, PlanSet* out,
                       SkylineScratch* scratch) {
  size_t used = 0;
  const auto keep = [&](size_t idx) {
    // Copy, not swap: `in` may be the enumerator's shared per-template
    // plan set, which must stay intact for the next cache hit. The output
    // slot's inner vectors keep their capacity across queries, so the
    // steady-state copy is a handful of memmoves and never allocates.
    AcquireSlot(&out->plans, &used, &scratch->spare_slots) = in.plans[idx];
  };
  // Existing plans first, then possible — each partition keeps its
  // original relative order going into the scan, so ties resolve exactly
  // as a partition-then-SkylineIndices pipeline would.
  FillPartitions(in, &scratch->existing_keys, &scratch->possible_keys);
  ScanSkyline(scratch->existing_keys, &scratch->frontier, keep);
  ScanSkyline(scratch->possible_keys, &scratch->frontier, keep);
  ReleaseSurplus(&out->plans, used, &scratch->spare_slots);
}

void SkylineIndicesInto(const PlanSet& in, std::vector<size_t>* out,
                        SkylineScratch* scratch) {
  out->clear();
  const auto keep = [&](size_t idx) { out->push_back(idx); };
  FillPartitions(in, &scratch->existing_keys, &scratch->possible_keys);
  ScanSkyline(scratch->existing_keys, &scratch->frontier, keep);
  ScanSkyline(scratch->possible_keys, &scratch->frontier, keep);
}

PlanSet SkylineFilter(PlanSet set) {
  PlanSet out;
  SkylineScratch scratch;
  SkylineFilterInto(set, &out, &scratch);
  return out;
}

}  // namespace cloudcache
