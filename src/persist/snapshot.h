#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/persist/codec.h"
#include "src/util/status.h"

namespace cloudcache {
namespace persist {

/// Snapshot container format (see docs/persistence.md):
///
///   magic u32 · format_version u32 · config_hash u64 · section_count u32
///   then per section: name (u64 length + bytes) · payload length u64 ·
///   payload CRC32 u32 · payload bytes
///
/// Sections are named, independently checksummed byte blobs; components
/// serialize themselves through `Encoder` into a section and read back
/// through `Decoder`. The header's config hash binds a snapshot to the
/// exact `ExperimentConfig` that produced it — restoring into a different
/// configuration is rejected before any section is decoded.
inline constexpr uint32_t kSnapshotMagic = 0x504B4343;  // "CCKP"
/// v2: the metrics section's quantile accumulator became the obs-layer
/// Histogram (sparse log2 buckets) in both SimMetrics and TenantMetrics.
inline constexpr uint32_t kSnapshotFormatVersion = 2;

/// Accumulates named sections and writes the container atomically:
/// serialize to `<path>.tmp`, flush, then rename over `path`, so a crash
/// mid-write leaves either the previous snapshot or none — never a torn
/// file (the reader's CRCs catch the remaining torn-rename window).
class SnapshotWriter {
 public:
  explicit SnapshotWriter(uint64_t config_hash) : config_hash_(config_hash) {}

  /// Starts a new section; the returned encoder is owned by the writer and
  /// stays valid until the writer is destroyed. Section names must be
  /// unique (checked at load, where it is a data error, and asserted by
  /// tests at write time through Serialize round-trips).
  Encoder* AddSection(const std::string& name);

  /// The full container as bytes (for tests and in-memory round trips).
  std::vector<uint8_t> Serialize() const;

  /// Atomic write: temp file + rename. IoError on any filesystem failure.
  Status WriteToFile(const std::string& path) const;

 private:
  struct Section {
    std::string name;
    Encoder encoder;
  };

  uint64_t config_hash_ = 0;
  std::vector<std::unique_ptr<Section>> sections_;
};

/// Parses and validates a snapshot container: magic, format version,
/// section directory, and every section's CRC32 up front. Any corruption
/// or truncation yields a descriptive Status — the loader never crashes on
/// hostile bytes. The config hash is exposed for the caller to match
/// against the running configuration (`ExpectConfigHash`), so version-skew
/// and foreign-snapshot errors carry distinct messages.
class SnapshotReader {
 public:
  static Result<SnapshotReader> FromBytes(std::vector<uint8_t> bytes);
  static Result<SnapshotReader> FromFile(const std::string& path);

  uint64_t config_hash() const { return config_hash_; }

  /// FailedPrecondition unless the snapshot's config hash equals
  /// `expected` — i.e. the snapshot was taken by a run with an identical
  /// deterministic configuration.
  Status ExpectConfigHash(uint64_t expected) const;

  bool HasSection(const std::string& name) const {
    return sections_.count(name) > 0;
  }
  std::vector<std::string> SectionNames() const;

  /// A decoder over the named section's payload. The decoder borrows the
  /// reader's buffer and must not outlive it.
  Result<Decoder> Section(const std::string& name) const;

 private:
  SnapshotReader() = default;

  struct Span {
    size_t offset = 0;
    size_t size = 0;
  };

  std::vector<uint8_t> bytes_;
  uint64_t config_hash_ = 0;
  std::map<std::string, Span> sections_;
};

}  // namespace persist
}  // namespace cloudcache
