#include "src/sim/sweep.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/catalog/tpch.h"

namespace cloudcache {
namespace {

// --- Grid-enumeration unit tests (no simulation). -------------------------

TEST(SweepCellSeedTest, DeterministicAndWellSeparated) {
  EXPECT_EQ(SweepCellSeed(17, 0), SweepCellSeed(17, 0));
  std::set<uint64_t> seeds;
  for (uint64_t base : {0ull, 17ull, 12345678901234ull}) {
    for (uint64_t cell = 0; cell < 64; ++cell) {
      seeds.insert(SweepCellSeed(base, cell));
    }
  }
  EXPECT_EQ(seeds.size(), 3u * 64u);  // No collisions across bases/cells.
  EXPECT_NE(SweepCellSeed(17, 0), 17u);  // Cell 0 is not the raw base seed.
}

TEST(SweepSpecTest, EnumeratesFigureGridInRowMajorOrder) {
  SweepSpec spec;  // Defaults: paper schemes x paper interarrivals.
  EXPECT_EQ(spec.CellCount(), 16u);
  const std::vector<SweepCell> cells = EnumerateSweepCells(spec);
  ASSERT_EQ(cells.size(), 16u);
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    EXPECT_EQ(cells[i].interarrival_index, i / 4);
    EXPECT_EQ(cells[i].scheme_index, i % 4);
    EXPECT_EQ(cells[i].scheme, PaperSchemes()[i % 4]);
    EXPECT_EQ(cells[i].interarrival_seconds, PaperInterarrivals()[i / 4]);
  }
  EXPECT_EQ(cells[0].label, "bypass @ 1s");
}

TEST(SweepSpecTest, VariantAxisLabelsAndCustomizesCells) {
  SweepSpec spec;
  spec.schemes = {SchemeKind::kEconCheap};
  spec.interarrivals = {10.0};
  spec.variants = {
      {"a=0.01", [](ExperimentConfig& c) {
         c.customize_econ = [](EconScheme::Config& econ) {
           econ.economy.regret_fraction_a = 0.01;
         };
       }},
      {"a=0.10", [](ExperimentConfig& c) {
         c.customize_econ = [](EconScheme::Config& econ) {
           econ.economy.regret_fraction_a = 0.10;
         };
       }},
  };
  const std::vector<SweepCell> cells = EnumerateSweepCells(spec);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].label, "econ-cheap @ 10s [a=0.01]");
  EXPECT_EQ(cells[1].label, "econ-cheap @ 10s [a=0.10]");

  EconScheme::Config econ;
  ExperimentConfig config = MakeCellConfig(spec, cells[1]);
  ASSERT_TRUE(config.customize_econ != nullptr);
  config.customize_econ(econ);
  EXPECT_DOUBLE_EQ(econ.economy.regret_fraction_a, 0.10);
}

TEST(SweepSpecTest, PerRowSeedsPairSchemesOnOneStream) {
  SweepSpec spec;
  spec.seed_policy = SweepSpec::SeedPolicy::kPerRow;
  const std::vector<SweepCell> cells = EnumerateSweepCells(spec);
  // Within a row (fixed interarrival) every scheme sees the same seed;
  // across rows the seeds differ.
  for (size_t i = 0; i < 4; ++i) {
    for (size_t s = 1; s < 4; ++s) {
      EXPECT_EQ(cells[i * 4 + s].seed, cells[i * 4].seed);
    }
  }
  EXPECT_NE(cells[0].seed, cells[4].seed);
}

TEST(SweepSpecTest, PerCellSeedsAreAllDistinct) {
  SweepSpec spec;
  const std::vector<SweepCell> cells = EnumerateSweepCells(spec);
  std::set<uint64_t> seeds;
  for (const SweepCell& cell : cells) seeds.insert(cell.seed);
  EXPECT_EQ(seeds.size(), cells.size());
}

TEST(SweepSpecTest, CellConfigCarriesSchemeIntervalAndSeed) {
  SweepSpec spec;
  spec.base.sim.num_queries = 123;
  const std::vector<SweepCell> cells = EnumerateSweepCells(spec);
  const SweepCell& cell = cells[7];  // econ-fast @ 10s.
  const ExperimentConfig config = MakeCellConfig(spec, cell);
  EXPECT_EQ(config.scheme, cell.scheme);
  EXPECT_DOUBLE_EQ(config.workload.interarrival_seconds,
                   cell.interarrival_seconds);
  EXPECT_EQ(config.workload.seed, cell.seed);
  EXPECT_EQ(config.seed, cell.seed + 1);
  EXPECT_EQ(config.sim.num_queries, 123u);  // Base fields survive.
}

// --- Thread-count invariance on the real Fig. 4 grid. ---------------------

/// Exact (bitwise, for doubles) equality over everything a SimMetrics
/// carries that reports can see. Any scheduling leak shows up here.
void ExpectBitIdentical(const SimMetrics& a, const SimMetrics& b) {
  EXPECT_EQ(a.scheme_name, b.scheme_name);

  EXPECT_EQ(a.response_seconds.count(), b.response_seconds.count());
  EXPECT_EQ(a.response_seconds.mean(), b.response_seconds.mean());
  EXPECT_EQ(a.response_seconds.sum(), b.response_seconds.sum());
  EXPECT_EQ(a.response_seconds.min(), b.response_seconds.min());
  EXPECT_EQ(a.response_seconds.max(), b.response_seconds.max());
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(a.response_hist.Quantile(q), b.response_hist.Quantile(q));
  }
  EXPECT_TRUE(obs::BitIdentical(a.response_hist, b.response_hist));

  EXPECT_EQ(a.operating_cost.cpu_dollars, b.operating_cost.cpu_dollars);
  EXPECT_EQ(a.operating_cost.network_dollars,
            b.operating_cost.network_dollars);
  EXPECT_EQ(a.operating_cost.disk_dollars, b.operating_cost.disk_dollars);
  EXPECT_EQ(a.operating_cost.io_dollars, b.operating_cost.io_dollars);

  EXPECT_EQ(a.revenue.micros(), b.revenue.micros());
  EXPECT_EQ(a.profit.micros(), b.profit.micros());
  EXPECT_EQ(a.final_credit.micros(), b.final_credit.micros());

  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.served_in_cache, b.served_in_cache);
  EXPECT_EQ(a.served_in_backend, b.served_in_backend);
  EXPECT_EQ(a.wan_bytes, b.wan_bytes);
  EXPECT_EQ(a.investments, b.investments);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.case_a, b.case_a);
  EXPECT_EQ(a.case_b, b.case_b);
  EXPECT_EQ(a.case_c, b.case_c);
  EXPECT_EQ(a.final_resident_bytes, b.final_resident_bytes);
  EXPECT_EQ(a.final_extra_nodes, b.final_extra_nodes);

  ASSERT_EQ(a.cost_over_time.size(), b.cost_over_time.size());
  EXPECT_EQ(a.cost_over_time.times(), b.cost_over_time.times());
  EXPECT_EQ(a.cost_over_time.values(), b.cost_over_time.values());
  ASSERT_EQ(a.credit_over_time.size(), b.credit_over_time.size());
  EXPECT_EQ(a.credit_over_time.times(), b.credit_over_time.times());
  EXPECT_EQ(a.credit_over_time.values(), b.credit_over_time.values());
}

/// The Fig. 4 grid (all four schemes x all four paper inter-arrivals) at
/// CI scale, run serially and with a saturated pool.
TEST(RunSweepTest, Fig4GridBitIdenticalAcrossThreadCounts) {
  const Catalog catalog = MakeTpchCatalog(100.0);
  const std::vector<QueryTemplate> templates = MakeTpchTemplates();

  SweepSpec spec;  // Fig. 4 grid is the default scheme/interval product.
  spec.base_seed = 23;
  spec.base.sim.num_queries = 400;
  spec.base.customize_econ = [](EconScheme::Config& econ) {
    econ.economy.regret_fraction_a = 0.001;
    econ.economy.conservative_provider = false;
    econ.economy.initial_credit = Money::FromDollars(20);
    econ.economy.model_build_latency = false;
  };

  const unsigned hardware =
      std::max(2u, std::thread::hardware_concurrency());
  const std::vector<SweepResult> serial =
      RunSweep(catalog, templates, spec, /*n_threads=*/1);
  const std::vector<SweepResult> parallel =
      RunSweep(catalog, templates, spec, hardware);

  ASSERT_EQ(serial.size(), spec.CellCount());
  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].cell.index, i);
    EXPECT_EQ(parallel[i].cell.label, serial[i].cell.label);
    EXPECT_EQ(parallel[i].cell.seed, serial[i].cell.seed);
    ExpectBitIdentical(parallel[i].metrics, serial[i].metrics);
  }
  // The grid really ran: every scheme served its queries.
  for (const SweepResult& result : serial) {
    EXPECT_EQ(result.metrics.queries, 400u) << result.cell.label;
  }
}

TEST(RunSweepTest, ProgressCallbackFiresOncePerCell) {
  const Catalog catalog = MakeTpchCatalog(100.0);
  const std::vector<QueryTemplate> templates = MakeTpchTemplates();

  SweepSpec spec;
  spec.schemes = {SchemeKind::kBypassYield};
  spec.interarrivals = {1.0, 10.0};
  spec.base.sim.num_queries = 50;

  std::mutex mutex;
  std::vector<size_t> seen;
  const std::vector<SweepResult> results = RunSweep(
      catalog, templates, spec, /*n_threads=*/2,
      [&mutex, &seen](const SweepCell& cell, const SimMetrics&) {
        std::lock_guard<std::mutex> lock(mutex);
        seen.push_back(cell.index);
      });
  EXPECT_EQ(results.size(), 2u);
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<size_t>{0, 1}));
}

}  // namespace
}  // namespace cloudcache
