#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/cache/cache_state.h"
#include "src/cost/cost_model.h"
#include "src/plan/plan.h"
#include "src/query/query.h"
#include "src/structure/structure.h"

namespace cloudcache {

/// Knobs restricting the plan space; the scheme variants of Section VII-A
/// are expressed through these (econ-col disables indexes and parallelism).
struct EnumeratorOptions {
  bool allow_indexes = true;
  bool allow_parallel = true;
  /// Node counts tried for cache plans; must contain 1.
  std::vector<uint32_t> node_options = {1, 2, 3, 4};
  /// Whether to emit hypothetical (PQpos) plans at all; the bypass-yield
  /// baseline has no regret machinery and turns this off.
  bool include_hypothetical = true;
  /// Kill switch for the per-template plan cache. The cache is
  /// semantically invisible (cached plans are invalidated on every
  /// residency epoch or candidate-generation change, and execution
  /// estimates are always recomputed per query); disabling it exists for
  /// A/B perf measurement and for the bit-identical-metrics regression
  /// test.
  bool enable_plan_cache = true;
};

/// Enumerates the candidate plan set PQ for a query (Section IV-B):
///
///  * the back-end plan (always exists, uses no cache structures),
///  * a cache column-scan plan over the accessed columns,
///  * one cache index plan per applicable candidate index (an index
///    applies when its leading key column carries one of the query's
///    predicates; the probe covers the maximal key prefix of predicate
///    columns, and the plan is covering if the key contains every accessed
///    column),
///  * each of the above at every allowed CPU-node count.
///
/// Structures already resident make a plan executable (PQexist); plans
/// referencing unbuilt structures are emitted as hypothetical (PQpos) when
/// include_hypothetical is set. The returned set is NOT skyline-filtered:
/// the economy first adds carried charges (Ca, owed maintenance), then
/// applies SkylineFilter.
///
/// Hot path: queries of the same template share the structure-dependent
/// part of their plans (spec shape, employed structures, which are
/// absent), so those are materialized once per template and cached; a
/// cache hit only re-runs CostModel::EstimateExecution (per-instance
/// selectivities) over the cached plans in place. An entry is keyed by
/// Query::template_id and revalidated against (CacheState::epoch,
/// candidate generation, the query's column signature); ad hoc queries
/// (template_id < 0) always take the derive-from-scratch path.
class PlanEnumerator {
 public:
  PlanEnumerator(const CostModel* model, StructureRegistry* registry,
                 EnumeratorOptions options);

  /// Registers the advisor's index candidate pool (interning the keys).
  /// Bumps the candidate generation, invalidating all cached plans.
  void SetIndexCandidates(const std::vector<StructureKey>& candidates);

  /// The interned candidate index ids.
  const std::vector<StructureId>& index_candidates() const {
    return index_candidates_;
  }

  /// Enumerates plans for `query` against the current cache contents.
  PlanSet Enumerate(const Query& query, const CacheState& cache) const;

  /// Buffer-reusing variant: fills `out` (clearing previous contents but
  /// recycling its plan slots and their inner vectors). `out` must not
  /// alias internal state.
  void Enumerate(const Query& query, const CacheState& cache,
                 PlanSet* out) const;

  /// Zero-copy variant for the per-query decision loop: returns the
  /// enumerator-OWNED plan set, freshly priced for this query instance.
  /// On a template-cache hit no plan vectors are touched at all — only
  /// `execution` and `carried_charges` are rewritten in place. The
  /// pointee is valid until the next call on this enumerator; callers may
  /// mutate the per-query scalar fields (`execution`, `carried_charges`)
  /// but must NOT touch `spec`/`structures`/`missing`, which are the
  /// cached template state.
  PlanSet* EnumerateShared(const Query& query, const CacheState& cache) const;

  const EnumeratorOptions& options() const { return options_; }

  /// Monotonic counter bumped by SetIndexCandidates; part of the plan
  /// cache key.
  uint64_t candidate_generation() const { return generation_; }

  /// Plan-cache observability (for tests and benchmarks).
  uint64_t plan_cache_hits() const { return cache_hits_; }
  uint64_t plan_cache_misses() const { return cache_misses_; }
  size_t plan_cache_size() const { return template_cache_.size(); }

 private:
  struct TemplateCacheEntry {
    /// Identity of the CacheState the plans were derived against —
    /// epochs of two different caches are not comparable, so a caller
    /// alternating caches (A/B harnesses) must miss, not collide.
    const CacheState* cache = nullptr;
    uint64_t epoch = 0;
    uint64_t generation = 0;
    bool valid = false;
    /// Structural signature of the query the plans were derived from;
    /// a template id must always map to one structure, but trace replay
    /// can in principle reuse ids across shapes, so a mismatch falls back
    /// to re-derivation instead of serving wrong plans.
    TableId table = 0;
    std::vector<ColumnId> output_columns;
    std::vector<ColumnId> predicate_columns;
    /// The materialized plan set. `spec`/`structures`/`missing` are
    /// template state filled on (re)build; `execution`/`carried_charges`
    /// are per-query and rewritten by every EnumerateShared call.
    PlanSet plans;
  };

  /// Derives the full plan list for `query` into `out` (slot-reusing).
  /// Fills only the structure-dependent fields; `execution` and
  /// `carried_charges` are left stale for the per-query pricing pass.
  void BuildPlans(const Query& query, const CacheState& cache,
                  std::vector<QueryPlan>* out) const;

  /// Adds per-node-count variants of a cache plan to `out`.
  void EmitNodeVariants(const CacheState& cache, const PlanSpec& spec,
                        const std::vector<StructureId>& structures,
                        std::vector<QueryPlan>* out, size_t* used) const;

  bool SignatureMatches(const TemplateCacheEntry& entry,
                        const Query& query) const;

  const CostModel* model_;
  StructureRegistry* registry_;
  EnumeratorOptions options_;
  std::vector<StructureId> index_candidates_;
  uint64_t generation_ = 0;

  /// Plan cache + scratch. Mutable: Enumerate is logically const (the
  /// plan set it returns is a pure function of (query, cache, candidates))
  /// and an enumerator is owned by one single-threaded engine. The spare
  /// pools park surplus output elements when a smaller template follows a
  /// larger one, so mixed-template steady state stays allocation-free.
  mutable std::unordered_map<int, TemplateCacheEntry> template_cache_;
  mutable PlanSet adhoc_plans_;
  mutable std::vector<StructureId> structures_scratch_;
  /// Spare slots for BuildPlans targets (cache entries, adhoc set).
  mutable std::vector<QueryPlan> build_spares_;
  /// Spare slots for the copying Enumerate overloads' `out` sets.
  mutable std::vector<QueryPlan> plan_spares_;
  /// Shares the per-family ExecutionBase across a query's node variants.
  mutable CostModel::BatchEstimator batch_;
  mutable uint64_t cache_hits_ = 0;
  mutable uint64_t cache_misses_ = 0;
};

}  // namespace cloudcache
