#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/persist/codec.h"
#include "src/server/protocol.h"
#include "src/util/status.h"

namespace cloudcache {
namespace server {

/// Thin RAII wrapper over a TCP socket fd plus blocking frame I/O —
/// everything here is transport; message layout lives in protocol.h.
/// Linux-only by design (the container and CI are): sends use
/// MSG_NOSIGNAL so a peer that vanished surfaces as a Status, never as
/// SIGPIPE.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();
  /// shutdown(SHUT_RDWR): unblocks any thread parked in a read on this
  /// socket (the server's drain path kicks every live connection this
  /// way) without racing the fd's lifetime the way close() would.
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

/// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1"), with
/// TCP_NODELAY set — the protocol is closed-loop request/response, where
/// Nagle would serialize every exchange onto a 40 ms ack timer.
Result<Socket> ConnectTcp(const std::string& host, uint16_t port);

/// Binds host:port (port 0 picks an ephemeral port) and listens.
Result<Socket> ListenTcp(const std::string& host, uint16_t port);

/// The port a bound socket actually listens on (resolves port 0).
Result<uint16_t> LocalPort(const Socket& socket);

/// TCP_NODELAY for sockets not created by ConnectTcp (accepted fds).
void EnableNoDelay(const Socket& socket);

/// Blocking write of the whole buffer.
Status WriteAll(const Socket& socket, const uint8_t* data, size_t size);

/// Frames `type byte + body` already encoded into `payload_enc` with the
/// u32 little-endian length prefix and writes it out.
Status WriteFrame(const Socket& socket, const persist::Encoder& payload);

/// Reads one length-prefixed frame into `payload`. A connection closed
/// cleanly at a frame boundary sets `*clean_eof` and returns OK with an
/// empty payload; EOF mid-frame, oversize lengths
/// (> kMaxFramePayloadBytes), and I/O errors return a Status.
Status ReadFrame(const Socket& socket, std::vector<uint8_t>* payload,
                 bool* clean_eof);

}  // namespace server
}  // namespace cloudcache
