#pragma once

#include "src/persist/codec.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace cloudcache {
namespace persist {

/// Serializers for the util accumulator types. Separate from metrics_io so
/// econ-layer components (accounts, schemes) can persist their RNGs and
/// histories without pulling in the sim layer's metrics tree.

void SaveRng(const Rng& rng, Encoder* enc);
Status RestoreRng(Decoder* dec, Rng* rng);

void SaveRunningStats(const RunningStats& stats, Encoder* enc);
Status RestoreRunningStats(Decoder* dec, RunningStats* stats);

void SaveTimeSeries(const TimeSeries& series, Encoder* enc);
Status RestoreTimeSeries(Decoder* dec, TimeSeries* series);

}  // namespace persist
}  // namespace cloudcache
