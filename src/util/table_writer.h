#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace cloudcache {

/// Accumulates rows of string cells and renders them as an aligned ASCII
/// table (for terminal reports) or CSV (for plotting). All bench binaries
/// emit their figures through this writer so the output format is uniform.
class TableWriter {
 public:
  /// Creates a table with the given column headers.
  explicit TableWriter(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  Status AddRow(std::vector<std::string> cells);

  /// Convenience: formats each double with `precision` digits.
  Status AddNumericRow(const std::vector<double>& cells, int precision = 3);

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return headers_.size(); }

  /// Renders as an aligned ASCII table with a header rule.
  std::string ToAscii() const;

  /// Renders as RFC-4180-ish CSV (cells containing comma/quote/newline are
  /// quoted, quotes doubled).
  std::string ToCsv() const;

  /// Writes ToCsv() to `path`, overwriting.
  Status WriteCsvFile(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for report code).
std::string FormatDouble(double value, int precision);

}  // namespace cloudcache
