# Empty dependencies file for cloudcache_cache_tests.
# This may be replaced when dependencies are built.
