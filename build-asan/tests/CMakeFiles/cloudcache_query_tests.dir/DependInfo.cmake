
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/query/query_test.cpp" "tests/CMakeFiles/cloudcache_query_tests.dir/query/query_test.cpp.o" "gcc" "tests/CMakeFiles/cloudcache_query_tests.dir/query/query_test.cpp.o.d"
  "/root/repo/tests/query/templates_test.cpp" "tests/CMakeFiles/cloudcache_query_tests.dir/query/templates_test.cpp.o" "gcc" "tests/CMakeFiles/cloudcache_query_tests.dir/query/templates_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/CMakeFiles/cloudcache.dir/DependInfo.cmake"
  "/root/repo/build-asan/_deps/googletest-build/googletest/CMakeFiles/gtest_main.dir/DependInfo.cmake"
  "/root/repo/build-asan/_deps/googletest-build/googletest/CMakeFiles/gtest.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
