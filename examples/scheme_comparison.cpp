// Scheme comparison: the paper's four contenders side by side on one
// workload — the interactive version of Figures 4 and 5.
//
//   ./scheme_comparison [queries] [interarrival_seconds]

#include <cstdio>
#include <cstdlib>

#include "src/catalog/tpch.h"
#include "src/sim/experiment.h"
#include "src/sim/report.h"

int main(int argc, char** argv) {
  using namespace cloudcache;
  const uint64_t num_queries =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 40'000;
  const double interarrival =
      argc > 2 ? std::strtod(argv[2], nullptr) : 10.0;

  const Catalog catalog = MakePaperTpchCatalog();
  const std::vector<QueryTemplate> templates = MakeTpchTemplates();

  ExperimentConfig config;
  config.workload.interarrival_seconds = interarrival;
  config.sim.num_queries = num_queries;
  config.customize_econ = [](EconScheme::Config& econ) {
    econ.economy.initial_credit = Money::FromDollars(200);
    econ.economy.regret_fraction_a = 0.02;
    econ.economy.model_build_latency = false;
  };

  std::printf(
      "running 4 schemes x %llu queries at %.0fs inter-arrival on a "
      "%.2f TB backend...\n\n",
      static_cast<unsigned long long>(num_queries), interarrival,
      static_cast<double>(catalog.TotalBytes()) / 1e12);

  const std::vector<SimMetrics> results =
      RunAllSchemes(catalog, templates, config);
  std::fputs(MakeSchemeSummaryTable(results).ToAscii().c_str(), stdout);

  std::puts("");
  for (const SimMetrics& metrics : results) {
    std::fputs(FormatRunDetail(metrics).c_str(), stdout);
  }
  return 0;
}
