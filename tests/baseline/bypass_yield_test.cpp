#include "src/baseline/bypass_yield.h"

#include <gtest/gtest.h>

#include "tests/testing/fixtures.h"

namespace cloudcache {
namespace {

class BypassYieldTest : public ::testing::Test {
 protected:
  BypassYieldTest() : catalog_(testing::MakeTinyCatalog()) {}

  BypassYieldScheme::Options DefaultOptions() {
    BypassYieldScheme::Options options;
    options.cache_fraction = 0.30;
    options.yield_threshold = 1.0;
    return options;
  }

  Catalog catalog_;
};

TEST_F(BypassYieldTest, BudgetIsThirtyPercentOfDatabase) {
  BypassYieldScheme scheme(&catalog_, DefaultOptions());
  EXPECT_EQ(scheme.cache_budget_bytes(),
            static_cast<uint64_t>(catalog_.TotalBytes() * 0.30));
}

TEST_F(BypassYieldTest, ColdCacheGoesToBackend) {
  BypassYieldScheme scheme(&catalog_, DefaultOptions());
  const Query q = testing::MakeTinyQuery(catalog_);
  const ServedQuery served = scheme.OnQuery(q, 0.0);
  EXPECT_TRUE(served.served);
  EXPECT_EQ(served.spec.access, PlanSpec::Access::kBackend);
  EXPECT_GT(served.execution.wan_bytes, 0u);
}

TEST_F(BypassYieldTest, AccruesSavableBytesOnMisses) {
  BypassYieldScheme scheme(&catalog_, DefaultOptions());
  const Query q = testing::MakeTinyQuery(catalog_);
  scheme.OnQuery(q, 0.0);
  for (ColumnId col : q.AccessedColumns()) {
    EXPECT_EQ(scheme.AccruedBytes(col), q.result_bytes);
  }
}

TEST_F(BypassYieldTest, LoadsColumnAtBreakEven) {
  BypassYieldScheme scheme(&catalog_, DefaultOptions());
  // Drive heavy queries until every accessed column pays for itself:
  // accrued result bytes >= column size (8 MB each; results ~1.6 MB).
  const Query q = testing::MakeTinyQuery(catalog_, 0.2);
  bool loaded = false;
  for (int i = 0; i < 50 && !loaded; ++i) {
    const ServedQuery served = scheme.OnQuery(q, i);
    loaded = served.investments > 0;
  }
  EXPECT_TRUE(loaded);
}

TEST_F(BypassYieldTest, ServesFromCacheOnceLoaded) {
  BypassYieldScheme::Options options = DefaultOptions();
  // The tiny catalog's 30% budget fits one 8 MB column; a cache *hit*
  // needs all three accessed columns, so give this test room.
  options.cache_fraction = 0.9;
  BypassYieldScheme scheme(&catalog_, options);
  const Query q = testing::MakeTinyQuery(catalog_, 0.2);
  for (int i = 0; i < 50; ++i) scheme.OnQuery(q, i);
  const ServedQuery served = scheme.OnQuery(q, 100.0);
  EXPECT_EQ(served.spec.access, PlanSpec::Access::kCacheScan);
  EXPECT_EQ(served.execution.wan_bytes, 0u);
  EXPECT_EQ(served.spec.cpu_nodes, 1u);  // net-only never parallelizes.
}

TEST_F(BypassYieldTest, BuildUsageReportsTransfer) {
  BypassYieldScheme scheme(&catalog_, DefaultOptions());
  const Query q = testing::MakeTinyQuery(catalog_, 0.2);
  BuildUsage total;
  for (int i = 0; i < 50; ++i) {
    total += scheme.OnQuery(q, i).build_usage;
  }
  // Loading the three accessed columns transferred their bytes.
  EXPECT_EQ(total.wan_bytes, 3u * 8'000'000);
}

TEST_F(BypassYieldTest, NeverExceedsCacheBudget) {
  BypassYieldScheme::Options options = DefaultOptions();
  options.cache_fraction = 0.4;  // 12.8 MB + change: fits one column only.
  // Budget = 0.4 * 32.012 MB ~ 12.8 MB; a fact column is 8 MB.
  BypassYieldScheme scheme(&catalog_, options);
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const double sel = rng.NextUniform(0.05, 0.3);
    scheme.OnQuery(testing::MakeTinyQuery(catalog_, sel, i), i);
    EXPECT_LE(scheme.cache().resident_bytes(), scheme.cache_budget_bytes());
  }
}

TEST_F(BypassYieldTest, HigherYieldDisplacesLower) {
  BypassYieldScheme::Options options = DefaultOptions();
  options.cache_fraction = 0.6;  // ~19 MB: two fact columns plus dims.
  options.aging_interval = 1'000'000;  // No aging in this test.
  BypassYieldScheme scheme(&catalog_, options);

  // Query A touches f_key+f_value+f_date... all three share accrual; to
  // create asymmetry, build one query on dim columns (small, loads fast)
  // and then a heavy fact stream whose yield grows beyond it.
  Query dim_query;
  dim_query.table = *catalog_.FindTable("dim");
  dim_query.output_columns = {*catalog_.FindColumn("dim.d_key"),
                              *catalog_.FindColumn("dim.d_attr")};
  dim_query.result_rows = 1000;
  dim_query.result_bytes = 50'000;  // Accrues past 12 KB immediately.
  for (int i = 0; i < 3; ++i) scheme.OnQuery(dim_query, i);
  EXPECT_TRUE(
      scheme.cache().ColumnResident(*catalog_.FindColumn("dim.d_key")));

  // The dim columns are tiny; they do not block the fact column load.
  const Query heavy = testing::MakeTinyQuery(catalog_, 0.2);
  for (int i = 0; i < 60; ++i) scheme.OnQuery(heavy, 10 + i);
  EXPECT_GT(scheme.cache().resident_bytes(), 8'000'000u);
}

TEST_F(BypassYieldTest, AgingHalvesAccruals) {
  BypassYieldScheme::Options options = DefaultOptions();
  options.aging_interval = 2;
  BypassYieldScheme scheme(&catalog_, options);
  const Query q = testing::MakeTinyQuery(catalog_, 0.01);
  scheme.OnQuery(q, 0.0);  // Accrue once.
  const uint64_t after_one = scheme.AccruedBytes(q.AccessedColumns()[0]);
  scheme.OnQuery(q, 1.0);  // Second query triggers aging then accrues.
  const uint64_t after_two = scheme.AccruedBytes(q.AccessedColumns()[0]);
  EXPECT_LT(after_two, 2 * after_one);
}

TEST_F(BypassYieldTest, OversizedColumnNeverLoads) {
  BypassYieldScheme::Options options = DefaultOptions();
  options.cache_fraction = 0.1;  // ~3.2 MB < any 8 MB fact column.
  BypassYieldScheme scheme(&catalog_, options);
  const Query q = testing::MakeTinyQuery(catalog_, 0.2);
  for (int i = 0; i < 100; ++i) scheme.OnQuery(q, i);
  EXPECT_EQ(scheme.cache().resident_bytes(), 0u);
}

}  // namespace
}  // namespace cloudcache
