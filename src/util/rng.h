#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cloudcache {

/// Deterministic 64-bit PRNG (xoshiro256**), seeded via splitmix64.
///
/// The standard-library engines are not guaranteed bit-identical across
/// implementations; simulations in this library must replay exactly from a
/// seed on any platform, so we carry our own generator and our own
/// distribution transforms.
class Rng {
 public:
  /// Seeds the four-word state by iterating splitmix64 over `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1) with 53 random bits.
  double NextDouble();

  /// Uniform integer in [0, bound), bias-free (Lemire rejection).
  /// `bound` must be >= 1.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Exponentially distributed value with the given mean (> 0). Used for
  /// Poisson arrival processes.
  double NextExponential(double mean);

  /// True with probability p (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Standard normal via Marsaglia polar method.
  double NextGaussian();

  /// Forks an independent stream: deterministic function of this stream's
  /// seed lineage and `stream_id`, without consuming this stream's output.
  Rng Fork(uint64_t stream_id) const;

  /// Copies the raw generator state (four xoshiro words + the retained
  /// seed) for checkpointing. A generator restored from these words
  /// continues the stream exactly where the saved one left off.
  void SaveState(uint64_t out[5]) const;
  void RestoreState(const uint64_t in[5]);

 private:
  uint64_t state_[4];
  uint64_t seed_;  // Retained for Fork().
};

/// splitmix64 mix of (seed, stream): deterministic, and far apart for
/// adjacent streams so derived streams do not correlate. This is the seed
/// discipline shared by the sweep engine (per-cell seeds) and the
/// multi-tenant simulator (per-tenant seeds): derived seed = pure function
/// of (base seed, index), so results are bit-identical regardless of
/// thread count or evaluation order.
uint64_t MixSeed(uint64_t seed, uint64_t stream);

/// Zipf(N, s) sampler over ranks {0, .., n-1} using the Gray/Jakobsson
/// rejection-inversion method; O(1) per sample after O(1) setup, exact for
/// any skew s >= 0 (s = 0 degenerates to uniform).
class ZipfSampler {
 public:
  /// `n` must be >= 1; `skew` must be >= 0.
  ZipfSampler(uint64_t n, double skew);

  /// Draws a rank in [0, n); rank 0 is the most popular.
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double skew() const { return skew_; }

  /// Exact probability mass of `rank` (for tests).
  double Pmf(uint64_t rank) const;

 private:
  double HIntegral(double x) const;
  double HIntegralInverse(double x) const;
  double H(double x) const;

  uint64_t n_;
  double skew_;
  double h_integral_x1_;
  double h_integral_n_;
  double s_;
  double harmonic_;  // Normalization constant for Pmf().
};

/// Weighted discrete sampler (alias method): O(n) build, O(1) sample.
class DiscreteSampler {
 public:
  /// Weights must be non-negative with a positive sum.
  explicit DiscreteSampler(const std::vector<double>& weights);

  /// Draws an index in [0, weights.size()).
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace cloudcache
