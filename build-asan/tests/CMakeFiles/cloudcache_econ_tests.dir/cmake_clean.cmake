file(REMOVE_RECURSE
  "CMakeFiles/cloudcache_econ_tests.dir/econ/account_test.cpp.o"
  "CMakeFiles/cloudcache_econ_tests.dir/econ/account_test.cpp.o.d"
  "CMakeFiles/cloudcache_econ_tests.dir/econ/amortizer_test.cpp.o"
  "CMakeFiles/cloudcache_econ_tests.dir/econ/amortizer_test.cpp.o.d"
  "CMakeFiles/cloudcache_econ_tests.dir/econ/budget_test.cpp.o"
  "CMakeFiles/cloudcache_econ_tests.dir/econ/budget_test.cpp.o.d"
  "CMakeFiles/cloudcache_econ_tests.dir/econ/economy_test.cpp.o"
  "CMakeFiles/cloudcache_econ_tests.dir/econ/economy_test.cpp.o.d"
  "CMakeFiles/cloudcache_econ_tests.dir/econ/regret_test.cpp.o"
  "CMakeFiles/cloudcache_econ_tests.dir/econ/regret_test.cpp.o.d"
  "cloudcache_econ_tests"
  "cloudcache_econ_tests.pdb"
  "cloudcache_econ_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudcache_econ_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
