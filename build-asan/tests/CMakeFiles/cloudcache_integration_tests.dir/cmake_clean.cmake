file(REMOVE_RECURSE
  "CMakeFiles/cloudcache_integration_tests.dir/integration/end_to_end_test.cpp.o"
  "CMakeFiles/cloudcache_integration_tests.dir/integration/end_to_end_test.cpp.o.d"
  "CMakeFiles/cloudcache_integration_tests.dir/integration/invariants_test.cpp.o"
  "CMakeFiles/cloudcache_integration_tests.dir/integration/invariants_test.cpp.o.d"
  "CMakeFiles/cloudcache_integration_tests.dir/integration/multi_tenant_equivalence_test.cpp.o"
  "CMakeFiles/cloudcache_integration_tests.dir/integration/multi_tenant_equivalence_test.cpp.o.d"
  "CMakeFiles/cloudcache_integration_tests.dir/integration/paper_properties_test.cpp.o"
  "CMakeFiles/cloudcache_integration_tests.dir/integration/paper_properties_test.cpp.o.d"
  "CMakeFiles/cloudcache_integration_tests.dir/integration/plan_cache_equivalence_test.cpp.o"
  "CMakeFiles/cloudcache_integration_tests.dir/integration/plan_cache_equivalence_test.cpp.o.d"
  "cloudcache_integration_tests"
  "cloudcache_integration_tests.pdb"
  "cloudcache_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudcache_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
