file(REMOVE_RECURSE
  "CMakeFiles/cloudcache_baseline_tests.dir/baseline/bypass_yield_test.cpp.o"
  "CMakeFiles/cloudcache_baseline_tests.dir/baseline/bypass_yield_test.cpp.o.d"
  "CMakeFiles/cloudcache_baseline_tests.dir/baseline/scheme_test.cpp.o"
  "CMakeFiles/cloudcache_baseline_tests.dir/baseline/scheme_test.cpp.o.d"
  "cloudcache_baseline_tests"
  "cloudcache_baseline_tests.pdb"
  "cloudcache_baseline_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudcache_baseline_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
