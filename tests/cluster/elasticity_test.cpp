#include "src/cluster/elasticity.h"

#include <gtest/gtest.h>

namespace cloudcache {
namespace {

ElasticityOptions FastOptions() {
  ElasticityOptions options;
  options.check_interval_queries = 100;
  options.sustain_windows = 2;
  options.cooldown_windows = 1;
  options.cold_share = 0.05;
  options.min_nodes = 1;
  options.max_nodes = 3;
  return options;
}

/// A window whose regret either clears or misses the projected rent, with
/// balanced traffic over `nodes`.
ElasticityWindow MakeWindow(size_t nodes, bool hot) {
  ElasticityWindow window;
  window.standing_regret = Money::FromDollars(hot ? 10.0 : 0.0);
  window.projected_rent_dollars = 1.0;
  window.routed.assign(nodes, 100);
  window.window_queries = 100 * nodes;
  return window;
}

TEST(ElasticityControllerTest, RentsOnlyAfterSustainedRegret) {
  ElasticityController controller(FastOptions());
  // One hot window is a spike, not a signal.
  EXPECT_EQ(controller.Step(MakeWindow(1, true)).decision,
            ElasticDecision::kHold);
  // The second consecutive hot window trips the sustain threshold.
  EXPECT_EQ(controller.Step(MakeWindow(1, true)).decision,
            ElasticDecision::kRent);
}

TEST(ElasticityControllerTest, CoolWindowResetsTheStreak) {
  ElasticityController controller(FastOptions());
  EXPECT_EQ(controller.Step(MakeWindow(1, true)).decision,
            ElasticDecision::kHold);
  EXPECT_EQ(controller.Step(MakeWindow(1, false)).decision,
            ElasticDecision::kHold);
  // The streak restarted: one more hot window is not enough.
  EXPECT_EQ(controller.Step(MakeWindow(1, true)).decision,
            ElasticDecision::kHold);
  EXPECT_EQ(controller.Step(MakeWindow(1, true)).decision,
            ElasticDecision::kRent);
}

TEST(ElasticityControllerTest, CooldownDelaysTheNextEvent) {
  ElasticityController controller(FastOptions());
  controller.Step(MakeWindow(1, true));
  ASSERT_EQ(controller.Step(MakeWindow(1, true)).decision,
            ElasticDecision::kRent);
  // Cooldown window: the regret persists but no action fires; the streak
  // still advances underneath, so the rent lands right after cooldown.
  EXPECT_EQ(controller.Step(MakeWindow(2, true)).decision,
            ElasticDecision::kHold);
  EXPECT_EQ(controller.Step(MakeWindow(2, true)).decision,
            ElasticDecision::kRent);
}

TEST(ElasticityControllerTest, MaxNodesCapsScaleOut) {
  ElasticityOptions options = FastOptions();
  options.cooldown_windows = 0;
  ElasticityController controller(options);
  controller.Step(MakeWindow(3, true));
  // At the ceiling, sustained regret changes nothing.
  EXPECT_EQ(controller.Step(MakeWindow(3, true)).decision,
            ElasticDecision::kHold);
  EXPECT_EQ(controller.Step(MakeWindow(3, true)).decision,
            ElasticDecision::kHold);
}

TEST(ElasticityControllerTest, ReleasesTheSustainedColdNode) {
  ElasticityOptions options = FastOptions();
  ElasticityController controller(options);
  ElasticityWindow window = MakeWindow(3, false);
  window.routed = {150, 149, 1};  // Node 2 under 5% of 300.
  window.window_queries = 300;
  EXPECT_EQ(controller.Step(window).decision, ElasticDecision::kHold);
  const ElasticAction action = controller.Step(window);
  EXPECT_EQ(action.decision, ElasticDecision::kRelease);
  EXPECT_EQ(action.release_index, 2u);
}

TEST(ElasticityControllerTest, NeverReleasesTheCoordinator) {
  ElasticityOptions options = FastOptions();
  ElasticityController controller(options);
  ElasticityWindow window = MakeWindow(2, false);
  window.routed = {0, 200};  // The coordinator itself is cold.
  window.window_queries = 200;
  EXPECT_EQ(controller.Step(window).decision, ElasticDecision::kHold);
  EXPECT_EQ(controller.Step(window).decision, ElasticDecision::kHold);
}

TEST(ElasticityControllerTest, MinNodesFloorsScaleIn) {
  ElasticityOptions options = FastOptions();
  options.min_nodes = 2;
  ElasticityController controller(options);
  ElasticityWindow window = MakeWindow(2, false);
  window.routed = {200, 0};
  window.window_queries = 200;
  EXPECT_EQ(controller.Step(window).decision, ElasticDecision::kHold);
  // Node 1 is sustained-cold, but the fleet is at its floor.
  EXPECT_EQ(controller.Step(window).decision, ElasticDecision::kHold);
}

TEST(ElasticityControllerTest, ColdestNodeWinsTheRelease) {
  ElasticityOptions options = FastOptions();
  ElasticityController controller(options);
  ElasticityWindow window = MakeWindow(3, false);
  window.routed = {296, 3, 1};  // Both 1 and 2 cold; 2 is colder.
  window.window_queries = 300;
  controller.Step(window);
  const ElasticAction action = controller.Step(window);
  EXPECT_EQ(action.decision, ElasticDecision::kRelease);
  EXPECT_EQ(action.release_index, 2u);
}

TEST(ElasticityControllerTest, ReleaseWinsOverRentWhenBothFire) {
  // High regret AND a dead node: dropping the dead node is free, renting
  // costs rent from the first second — the controller releases first.
  ElasticityOptions options = FastOptions();
  ElasticityController controller(options);
  ElasticityWindow window = MakeWindow(2, true);
  window.routed = {199, 1};
  window.window_queries = 200;
  controller.Step(window);
  EXPECT_EQ(controller.Step(window).decision, ElasticDecision::kRelease);
}

TEST(ElasticityControllerTest, PostReleaseWindowsStartColdStreaksFresh) {
  // After a release the survivors shift down into the victim's indices,
  // so per-index streak history would attach to the wrong nodes; the
  // release must restart every streak (the cold_streaks_.assign path).
  ElasticityOptions options = FastOptions();
  options.cooldown_windows = 0;  // Isolate the reset from the cooldown.
  ElasticityController controller(options);
  ElasticityWindow three = MakeWindow(3, false);
  three.routed = {290, 5, 5};  // Nodes 1 and 2 both under 5% of 300.
  three.window_queries = 300;
  EXPECT_EQ(controller.Step(three).decision, ElasticDecision::kHold);
  const ElasticAction release = controller.Step(three);
  ASSERT_EQ(release.decision, ElasticDecision::kRelease);
  EXPECT_EQ(release.release_index, 2u);

  // Node 1 was just as sustained-cold as the victim, but its streak was
  // reset with the fleet: one more cold window is a fresh streak of one
  // — a hold — not an instant second release off inherited history.
  ElasticityWindow two = MakeWindow(2, false);
  two.routed = {195, 5};
  two.window_queries = 200;
  EXPECT_EQ(controller.Step(two).decision, ElasticDecision::kHold);
  EXPECT_EQ(controller.Step(two).decision, ElasticDecision::kRelease);
}

}  // namespace
}  // namespace cloudcache
