#include "src/cache/maintenance.h"

#include <algorithm>

#include "src/util/logging.h"

namespace cloudcache {

void MaintenanceLedger::Register(StructureId id, const StructureKey& key,
                                 SimTime now, Money build_cost,
                                 double failure_scale) {
  CLOUDCACHE_CHECK(!IsTracked(id));
  CLOUDCACHE_CHECK_GE(failure_scale, 1.0);
  clocks_[id] = Clock{key, now, build_cost, failure_scale,
                      StructureBytes(model_->catalog(), key)};
}

double MaintenanceLedger::FailureScale(StructureId id) const {
  auto it = clocks_.find(id);
  return it == clocks_.end() ? 1.0 : it->second.failure_scale;
}

Money MaintenanceLedger::BuildCostOf(StructureId id) const {
  auto it = clocks_.find(id);
  CLOUDCACHE_CHECK(it != clocks_.end());
  return it->second.build_cost;
}

Money MaintenanceLedger::Unregister(StructureId id, SimTime now) {
  auto it = clocks_.find(id);
  CLOUDCACHE_CHECK(it != clocks_.end());
  const Money written_off =
      PriceGap(it->second, std::max(0.0, now - it->second.paid_until));
  clocks_.erase(it);
  return written_off;
}

Money MaintenanceLedger::Owed(StructureId id, SimTime now) const {
  auto it = clocks_.find(id);
  CLOUDCACHE_CHECK(it != clocks_.end());
  return PriceGap(it->second, std::max(0.0, now - it->second.paid_until));
}

Money MaintenanceLedger::OwedCapped(StructureId id, SimTime now,
                                    double cap_seconds) const {
  auto it = clocks_.find(id);
  CLOUDCACHE_CHECK(it != clocks_.end());
  const double gap = std::max(0.0, now - it->second.paid_until);
  return PriceGap(it->second, std::min(gap, cap_seconds));
}

Money MaintenanceLedger::Pay(StructureId id, SimTime now,
                             double cap_seconds) {
  auto it = clocks_.find(id);
  CLOUDCACHE_CHECK(it != clocks_.end());
  const double gap = std::max(0.0, now - it->second.paid_until);
  const double covered = std::min(gap, cap_seconds);
  const Money collected = PriceGap(it->second, covered);
  it->second.paid_until += covered;
  return collected;
}

}  // namespace cloudcache
