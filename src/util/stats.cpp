#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

namespace cloudcache {

void RunningStats::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const int64_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          static_cast<double>(total);
  count_ = total;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

QuantileSketch::QuantileSketch() : bins_(kBins, 0) {}

namespace {
// Bin geometry: kBins log-spaced bins over [kLo, kHi).
constexpr double kLo = 1e-9;
constexpr double kHi = 1e9;
const double kLogLo = std::log(kLo);
const double kLogSpan = std::log(kHi) - std::log(kLo);
}  // namespace

size_t QuantileSketch::BinIndex(double x) const {
  const double t = (std::log(x) - kLogLo) / kLogSpan;
  const auto raw = static_cast<long>(t * static_cast<double>(kBins));
  if (raw < 0) return 0;
  if (raw >= static_cast<long>(kBins)) return kBins - 1;
  return static_cast<size_t>(raw);
}

double QuantileSketch::BinMid(size_t index) const {
  const double frac =
      (static_cast<double>(index) + 0.5) / static_cast<double>(kBins);
  return std::exp(kLogLo + frac * kLogSpan);
}

void QuantileSketch::Add(double x) {
  if (x < 0) x = 0;
  ++count_;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  if (x < kLo) {
    ++underflow_;
    return;
  }
  ++bins_[BinIndex(x)];
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  for (size_t i = 0; i < kBins; ++i) bins_[i] += other.bins_[i];
  count_ += other.count_;
  underflow_ += other.underflow_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double QuantileSketch::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  const double target = q * static_cast<double>(count_);
  double cum = static_cast<double>(underflow_);
  if (target <= cum) return 0.0;
  for (size_t i = 0; i < kBins; ++i) {
    cum += static_cast<double>(bins_[i]);
    if (cum >= target) return std::clamp(BinMid(i), min_, max_);
  }
  return max_;
}

void TimeSeries::Add(double time, double value) {
  times_.push_back(time);
  values_.push_back(value);
}

TimeSeries TimeSeries::Downsample(size_t max_points) const {
  TimeSeries out;
  const size_t n = times_.size();
  if (n <= max_points || max_points < 2) {
    out.times_ = times_;
    out.values_ = values_;
    return out;
  }
  for (size_t k = 0; k < max_points; ++k) {
    const size_t i = k * (n - 1) / (max_points - 1);
    out.Add(times_[i], values_[i]);
  }
  return out;
}

}  // namespace cloudcache
