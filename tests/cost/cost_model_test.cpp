#include "src/cost/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/testing/fixtures.h"

namespace cloudcache {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest()
      : catalog_(testing::MakeTinyCatalog()),
        prices_(testing::MakeRoundPrices()),
        model_(&catalog_, &prices_) {}

  Catalog catalog_;
  PriceList prices_;
  CostModel model_;
};

TEST_F(CostModelTest, BackendPlanShipsResultOverWan) {
  const Query q = testing::MakeTinyQuery(catalog_, 0.01);
  PlanSpec spec;
  spec.access = PlanSpec::Access::kBackend;
  const ExecutionEstimate est = model_.EstimateExecution(q, spec);
  EXPECT_EQ(est.wan_bytes, q.result_bytes);
  // Time includes the WAN transfer at 12.5 MB/s.
  const double transfer =
      static_cast<double>(q.result_bytes) / 12.5e6;
  EXPECT_GT(est.time_seconds, transfer);
}

TEST_F(CostModelTest, CacheScanHasNoWanTraffic) {
  const Query q = testing::MakeTinyQuery(catalog_, 0.01);
  PlanSpec spec;
  spec.access = PlanSpec::Access::kCacheScan;
  const ExecutionEstimate est = model_.EstimateExecution(q, spec);
  EXPECT_EQ(est.wan_bytes, 0u);
  EXPECT_GT(est.cost.micros(), 0);
}

TEST_F(CostModelTest, ClusteredPredicatePrunesScan) {
  const Query narrow = testing::MakeTinyQuery(catalog_, 0.001);
  const Query wide = testing::MakeTinyQuery(catalog_, 0.5);
  PlanSpec spec;
  spec.access = PlanSpec::Access::kCacheScan;
  const ExecutionEstimate en = model_.EstimateExecution(narrow, spec);
  const ExecutionEstimate ew = model_.EstimateExecution(wide, spec);
  EXPECT_LT(en.io_ops, ew.io_ops);
  EXPECT_LT(en.time_seconds, ew.time_seconds);
}

TEST_F(CostModelTest, NonClusteredPredicateDoesNotPruneScan) {
  Query q = testing::MakeTinyQuery(catalog_, 0.01);
  q.predicates[0].clustered = false;  // Now nothing is clustered.
  PlanSpec spec;
  spec.access = PlanSpec::Access::kCacheScan;
  const ExecutionEstimate est = model_.EstimateExecution(q, spec);
  // Full scan of 3 accessed columns x 8 MB = 24 MB / 8 KiB pages.
  EXPECT_EQ(est.io_ops,
            static_cast<uint64_t>(std::ceil(24e6 / 8192.0)));
}

TEST_F(CostModelTest, IndexProbeBeatsScanForSelectiveQueries) {
  Query q = testing::MakeTinyQuery(catalog_, 0.01);
  // Without clustering the scan cannot skip; the index probe should win.
  q.predicates[0].clustered = false;
  PlanSpec scan;
  scan.access = PlanSpec::Access::kCacheScan;
  PlanSpec index;
  index.access = PlanSpec::Access::kCacheIndex;
  index.covered_predicates = {0, 1};  // sel = 0.01 * 0.5.
  const ExecutionEstimate es = model_.EstimateExecution(q, scan);
  const ExecutionEstimate ei = model_.EstimateExecution(q, index);
  EXPECT_LT(ei.time_seconds, es.time_seconds);
}

TEST_F(CostModelTest, CoveringIndexCheaperThanFetching) {
  const Query q = testing::MakeTinyQuery(catalog_, 0.01);
  PlanSpec fetch;
  fetch.access = PlanSpec::Access::kCacheIndex;
  fetch.covered_predicates = {0};
  PlanSpec covering = fetch;
  covering.covering = true;
  const ExecutionEstimate ef = model_.EstimateExecution(q, fetch);
  const ExecutionEstimate ec = model_.EstimateExecution(q, covering);
  EXPECT_LT(ec.io_ops, ef.io_ops);
}

TEST_F(CostModelTest, ParallelTimeFactorMatchesSdssScalingLaw) {
  // The calibration point of [17]: 2x speedup at 3 nodes with +25% CPU
  // for a job with parallel fraction 0.875.
  EXPECT_NEAR(model_.ParallelTimeFactor(0.875, 3), 0.5, 1e-9);
  EXPECT_NEAR(model_.ParallelCpuFactor(0.875, 3), 1.25, 1e-9);
}

TEST_F(CostModelTest, OneNodeIsNeutral) {
  EXPECT_EQ(model_.ParallelTimeFactor(0.9, 1), 1.0);
  EXPECT_EQ(model_.ParallelCpuFactor(0.9, 1), 1.0);
}

TEST_F(CostModelTest, MoreNodesNeverSlowerButAlwaysMoreCpu) {
  double prev_time = 1.0;
  for (uint32_t k = 2; k <= 8; ++k) {
    const double t = model_.ParallelTimeFactor(0.95, k);
    EXPECT_LT(t, prev_time) << k;
    EXPECT_GT(model_.ParallelCpuFactor(0.95, k), 1.0) << k;
    prev_time = t;
  }
}

TEST_F(CostModelTest, SerialJobGainsNothing) {
  EXPECT_EQ(model_.ParallelTimeFactor(0.0, 4), 1.0);
  EXPECT_EQ(model_.ParallelCpuFactor(0.0, 4), 1.0);
}

TEST_F(CostModelTest, ParallelPlanFasterAndPricier) {
  const Query q = testing::MakeTinyQuery(catalog_, 0.05);
  PlanSpec one;
  one.access = PlanSpec::Access::kCacheScan;
  PlanSpec three = one;
  three.cpu_nodes = 3;
  const ExecutionEstimate e1 = model_.EstimateExecution(q, one);
  const ExecutionEstimate e3 = model_.EstimateExecution(q, three);
  EXPECT_LT(e3.time_seconds, e1.time_seconds);
  EXPECT_GT(e3.cpu_seconds, e1.cpu_seconds);
}

TEST_F(CostModelTest, Eq8CostIsCpuPlusIo) {
  const Query q = testing::MakeTinyQuery(catalog_, 0.01);
  PlanSpec spec;
  spec.access = PlanSpec::Access::kCacheScan;
  const ExecutionEstimate est = model_.EstimateExecution(q, spec);
  const Money expected =
      prices_.CpuCost(est.cpu_seconds) + prices_.IoCost(est.io_ops);
  EXPECT_EQ(est.cost, expected);
}

TEST_F(CostModelTest, Eq9AddsNetworkTerms) {
  const Query q = testing::MakeTinyQuery(catalog_, 0.01);
  PlanSpec spec;
  spec.access = PlanSpec::Access::kBackend;
  const ExecutionEstimate est = model_.EstimateExecution(q, spec);
  // Cost must include S(Q) * cb.
  EXPECT_GE(est.cost, prices_.NetworkCost(q.result_bytes));
}

TEST_F(CostModelTest, CpuNodeBuildCostEq10) {
  // b * u = 100 s * $0.001/s.
  EXPECT_EQ(model_.CpuNodeBuildCost(), Money::FromDollars(0.1));
}

TEST_F(CostModelTest, ColumnBuildCostEq12) {
  const ColumnId col = *catalog_.FindColumn("fact.f_key");
  // 8 MB over 12.5 MB/s = 0.64 s CPU at fn=1 -> $0.00064;
  // 8 MB network at $0.10/GB -> $0.0008.
  const Money expected = Money::FromDollars(0.64 * 0.001) +
                         Money::FromDollars(8e6 * 0.10 / 1e9);
  EXPECT_EQ(model_.ColumnBuildCost(col), expected);
}

TEST_F(CostModelTest, ColumnBuildSecondsIsWanTransfer) {
  const ColumnId col = *catalog_.FindColumn("fact.f_key");
  EXPECT_NEAR(model_.ColumnBuildSeconds(col), 8e6 / 12.5e6, 1e-9);
}

TEST_F(CostModelTest, IndexBuildChargesMissingColumnsEq14) {
  const ColumnId col = *catalog_.FindColumn("fact.f_date");
  const StructureKey index = IndexKey(catalog_, {col});
  std::vector<bool> none(catalog_.num_columns(), false);
  std::vector<bool> all(catalog_.num_columns(), true);
  const Money with_transfer = model_.IndexBuildCost(index, none);
  const Money without_transfer = model_.IndexBuildCost(index, all);
  EXPECT_EQ(with_transfer - without_transfer,
            model_.ColumnBuildCost(col));
  EXPECT_GT(without_transfer.micros(), 0);  // The sort is never free.
}

TEST_F(CostModelTest, IndexBuildSecondsIncludeTransfers) {
  const ColumnId col = *catalog_.FindColumn("fact.f_date");
  const StructureKey index = IndexKey(catalog_, {col});
  std::vector<bool> none(catalog_.num_columns(), false);
  std::vector<bool> all(catalog_.num_columns(), true);
  EXPECT_GT(model_.IndexBuildSeconds(index, none),
            model_.IndexBuildSeconds(index, all));
}

TEST_F(CostModelTest, MaintenanceRatesEq11Eq13Eq15) {
  const ColumnId col = *catalog_.FindColumn("fact.f_key");
  // Column: 8 MB at $0.10/GB-month for one month.
  EXPECT_EQ(model_.MaintenanceCost(ColumnKey(catalog_, col), kMonth),
            Money::FromDollars(8e6 * 0.10 / 1e9));
  // Index: bigger footprint -> bigger rent.
  EXPECT_GT(
      model_.MaintenanceCost(IndexKey(catalog_, {col}), kMonth),
      model_.MaintenanceCost(ColumnKey(catalog_, col), kMonth));
  // CPU node: reservation rate * time.
  EXPECT_EQ(model_.MaintenanceCost(CpuNodeKey(0), 100.0),
            Money::FromDollars(100.0 * 0.001 * prices_.cpu_reserve_fraction));
}

TEST_F(CostModelTest, MaintenanceZeroForZeroSeconds) {
  const ColumnId col = *catalog_.FindColumn("fact.f_key");
  EXPECT_TRUE(
      model_.MaintenanceCost(ColumnKey(catalog_, col), 0.0).IsZero());
}

TEST_F(CostModelTest, BuildUsageMatchesBuildCost) {
  const ColumnId col = *catalog_.FindColumn("fact.f_value");
  std::vector<bool> none(catalog_.num_columns(), false);
  const StructureKey key = ColumnKey(catalog_, col);
  const BuildUsage usage = model_.EstimateBuildUsage(key, none);
  const Money repriced = prices_.CpuCost(usage.cpu_seconds) +
                         prices_.NetworkCost(usage.wan_bytes) +
                         prices_.IoCost(usage.io_ops);
  EXPECT_EQ(repriced, model_.BuildCost(key, none));
}

TEST_F(CostModelTest, BuildUsageIndexCoversSortAndTransfers) {
  const ColumnId col = *catalog_.FindColumn("fact.f_date");
  std::vector<bool> none(catalog_.num_columns(), false);
  const BuildUsage usage =
      model_.EstimateBuildUsage(IndexKey(catalog_, {col}), none);
  EXPECT_EQ(usage.wan_bytes, catalog_.ColumnBytes(col));
  EXPECT_GT(usage.io_ops, 0u);
  EXPECT_GT(usage.cpu_seconds, 0.0);
}

TEST_F(CostModelTest, NetworkOnlyPricesZeroOutCacheExecution) {
  const PriceList net_only = PriceList::NetworkOnly();
  CostModel model(&catalog_, &net_only);
  const Query q = testing::MakeTinyQuery(catalog_, 0.01);
  PlanSpec cache;
  cache.access = PlanSpec::Access::kCacheScan;
  EXPECT_TRUE(model.EstimateExecution(q, cache).cost.IsZero());
  PlanSpec backend;
  backend.access = PlanSpec::Access::kBackend;
  EXPECT_GT(model.EstimateExecution(q, backend).cost.micros(), 0);
}

TEST_F(CostModelTest, TimeIsPriceIndependent) {
  // Same physical calibration, dollar rates zeroed out: the response-time
  // estimate must not move.
  PriceList net_only = testing::MakeRoundPrices();
  net_only.cpu_second_dollars = 0;
  net_only.disk_byte_second_dollars = 0;
  net_only.io_op_dollars = 0;
  CostModel free_model(&catalog_, &net_only);
  const Query q = testing::MakeTinyQuery(catalog_, 0.02);
  for (auto access : {PlanSpec::Access::kBackend,
                      PlanSpec::Access::kCacheScan}) {
    PlanSpec spec;
    spec.access = access;
    EXPECT_DOUBLE_EQ(free_model.EstimateExecution(q, spec).time_seconds,
                     model_.EstimateExecution(q, spec).time_seconds);
  }
}

TEST_F(CostModelTest, BackendCrossesOverBetweenScanAndProbe) {
  // With a clustered predicate the back-end's region scan reads
  // sel * 24 MB = 24 KB (3 pages) — cheaper than fetching 500 scattered
  // rows at the x8 random penalty (96 KB -> 12 ops). Remove the
  // clustering and the scan alternative balloons to the whole table, so
  // the back-end flips to the probe.
  Query q = testing::MakeTinyQuery(catalog_, 0.001);
  PlanSpec backend;
  backend.access = PlanSpec::Access::kBackend;
  const ExecutionEstimate clustered = model_.EstimateExecution(q, backend);
  EXPECT_EQ(clustered.io_ops, 3u);  // ceil(24 KB / 8 KiB).
  q.predicates[0].clustered = false;
  const ExecutionEstimate probing = model_.EstimateExecution(q, backend);
  EXPECT_EQ(probing.io_ops, 12u);  // ceil(500 * 24 B * 8 / 8 KiB).
  EXPECT_LT(clustered.io_ops, probing.io_ops);
}

TEST_F(CostModelTest, BackendScansWhenBroad) {
  // Broad query (50% selectivity): fetching half the rows at the random
  // penalty would read 4x the clustered region; the back-end scans.
  Query q = testing::MakeTinyQuery(catalog_, 0.5);
  q.predicates[1].selectivity = 1.0;  // Only the clustered predicate.
  PlanSpec backend;
  backend.access = PlanSpec::Access::kBackend;
  PlanSpec scan;
  scan.access = PlanSpec::Access::kCacheScan;
  const ExecutionEstimate backend_est = model_.EstimateExecution(q, backend);
  const ExecutionEstimate scan_est = model_.EstimateExecution(q, scan);
  // Same access volume as the cache scan (plus WAN shipping on top).
  EXPECT_EQ(backend_est.io_ops, scan_est.io_ops);
  EXPECT_GT(backend_est.time_seconds, scan_est.time_seconds);
}

TEST_F(CostModelTest, BackendPathIsNeverWorseThanEitherAlternative) {
  // The min() in the backend model: its I/O never exceeds what either
  // pure path would pay, across the selectivity range.
  for (double sel : {0.0001, 0.001, 0.01, 0.1, 0.5, 1.0}) {
    Query q = testing::MakeTinyQuery(catalog_, sel);
    PlanSpec backend;
    backend.access = PlanSpec::Access::kBackend;
    const uint64_t backend_io =
        model_.EstimateExecution(q, backend).io_ops;
    // Pure scan alternative.
    PlanSpec scan;
    scan.access = PlanSpec::Access::kCacheScan;
    const uint64_t scan_io = model_.EstimateExecution(q, scan).io_ops;
    EXPECT_LE(backend_io, scan_io + 1) << "sel=" << sel;
  }
}

class NodeSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(NodeSweep, TimeFactorWithinBounds) {
  const Catalog catalog = testing::MakeTinyCatalog();
  const PriceList prices = testing::MakeRoundPrices();
  const CostModel model(&catalog, &prices);
  const uint32_t k = GetParam();
  const double factor = model.ParallelTimeFactor(0.9, k);
  EXPECT_GT(factor, 0.0);
  EXPECT_LE(factor, 1.0);
  // Never better than perfect linear speedup.
  EXPECT_GE(factor, 1.0 / static_cast<double>(k) - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Nodes, NodeSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 16));

}  // namespace
}  // namespace cloudcache
