// M1: throughput of the cost model (Eq. 8-15) — the hot inner function of
// the whole simulator; every candidate plan of every query calls it.

#include <benchmark/benchmark.h>

#include "src/catalog/tpch.h"
#include "src/cost/cost_model.h"
#include "src/query/templates.h"
#include "src/util/rng.h"

namespace cloudcache {
namespace {

struct Env {
  Env()
      : catalog(MakeTpchCatalog(2500.0)),
        prices(PriceList::AmazonEc2_2009()),
        model(&catalog, &prices) {
    auto resolved = ResolveTemplates(catalog, MakeTpchTemplates());
    templates = *resolved;
    Rng rng(1);
    for (int i = 0; i < 64; ++i) {
      queries.push_back(InstantiateQuery(
          templates[i % templates.size()], catalog, rng,
          static_cast<int>(i % templates.size()), i));
    }
  }
  Catalog catalog;
  PriceList prices;
  CostModel model;
  std::vector<ResolvedTemplate> templates;
  std::vector<Query> queries;
};

Env& GetEnv() {
  static Env env;
  return env;
}

void BM_EstimateBackend(benchmark::State& state) {
  Env& env = GetEnv();
  PlanSpec spec;
  spec.access = PlanSpec::Access::kBackend;
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.model.EstimateExecution(
        env.queries[i++ % env.queries.size()], spec));
  }
}
BENCHMARK(BM_EstimateBackend);

void BM_EstimateCacheScan(benchmark::State& state) {
  Env& env = GetEnv();
  PlanSpec spec;
  spec.access = PlanSpec::Access::kCacheScan;
  spec.cpu_nodes = static_cast<uint32_t>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.model.EstimateExecution(
        env.queries[i++ % env.queries.size()], spec));
  }
}
BENCHMARK(BM_EstimateCacheScan)->Arg(1)->Arg(3);

void BM_EstimateCacheIndex(benchmark::State& state) {
  Env& env = GetEnv();
  PlanSpec spec;
  spec.access = PlanSpec::Access::kCacheIndex;
  spec.covered_predicates = {0};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.model.EstimateExecution(
        env.queries[i++ % env.queries.size()], spec));
  }
}
BENCHMARK(BM_EstimateCacheIndex);

void BM_ColumnBuildCost(benchmark::State& state) {
  Env& env = GetEnv();
  ColumnId col = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        env.model.ColumnBuildCost(col++ % env.catalog.num_columns()));
  }
}
BENCHMARK(BM_ColumnBuildCost);

void BM_IndexBuildCost(benchmark::State& state) {
  Env& env = GetEnv();
  const ColumnId date = *env.catalog.FindColumn("lineitem.l_shipdate");
  const ColumnId disc = *env.catalog.FindColumn("lineitem.l_discount");
  const StructureKey key = IndexKey(env.catalog, {date, disc});
  const std::vector<bool> none(env.catalog.num_columns(), false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.model.IndexBuildCost(key, none));
  }
}
BENCHMARK(BM_IndexBuildCost);

}  // namespace
}  // namespace cloudcache
