// Property-style invariant tests: randomized inputs, structural truths.
//
// Where the unit tests pin exact values on hand-built scenarios, these
// sweep randomized configurations and assert the invariants that must
// hold for *every* input: conservation of money, Pareto-correctness of
// the skyline, monotonicity of the cost model, and the economy's
// bookkeeping identities.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/catalog/tpch.h"
#include "src/plan/skyline.h"
#include "src/sim/experiment.h"
#include "src/structure/index_advisor.h"
#include "src/workload/trace.h"
#include "tests/testing/fixtures.h"

namespace cloudcache {
namespace {

// ---------------------------------------------------------------- skyline

QueryPlan RandomPlan(Rng& rng) {
  QueryPlan plan;
  plan.execution.time_seconds = rng.NextUniform(0.1, 100.0);
  plan.execution.cost = Money::FromMicros(rng.NextInt(1, 1'000'000));
  if (rng.NextBernoulli(0.5)) plan.missing.push_back(0);
  return plan;
}

bool Dominates(const QueryPlan& a, const QueryPlan& b) {
  const bool no_worse = a.TimeSeconds() <= b.TimeSeconds() &&
                        a.Price() <= b.Price();
  const bool better = a.TimeSeconds() < b.TimeSeconds() ||
                      a.Price() < b.Price();
  return no_worse && better;
}

class SkylineProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SkylineProperty, SurvivorsAreUndominatedAndLosersAreDominated) {
  Rng rng(GetParam());
  std::vector<QueryPlan> plans;
  const int n = static_cast<int>(rng.NextInt(1, 60));
  for (int i = 0; i < n; ++i) plans.push_back(RandomPlan(rng));

  const std::vector<size_t> kept = SkylineIndices(plans);
  ASSERT_FALSE(kept.empty());

  std::vector<bool> is_kept(plans.size(), false);
  for (size_t idx : kept) is_kept[idx] = true;

  for (size_t i = 0; i < plans.size(); ++i) {
    if (is_kept[i]) {
      // No plan strictly dominates a survivor.
      for (size_t j = 0; j < plans.size(); ++j) {
        EXPECT_FALSE(j != i && Dominates(plans[j], plans[i]))
            << "plan " << j << " dominates surviving plan " << i;
      }
    } else {
      // Every eliminated plan is dominated or duplicates a survivor.
      bool justified = false;
      for (size_t idx : kept) {
        justified |= Dominates(plans[idx], plans[i]);
        justified |= plans[idx].TimeSeconds() == plans[i].TimeSeconds() &&
                     plans[idx].Price() == plans[i].Price();
      }
      EXPECT_TRUE(justified) << "plan " << i << " eliminated unjustly";
    }
  }

  // Survivors are reported in strictly ascending time.
  for (size_t k = 1; k < kept.size(); ++k) {
    EXPECT_LT(plans[kept[k - 1]].TimeSeconds(),
              plans[kept[k]].TimeSeconds());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkylineProperty,
                         ::testing::Range<uint64_t>(1, 26));

// ------------------------------------------------------------ cost model

class CostMonotonicity : public ::testing::TestWithParam<uint64_t> {
 protected:
  CostMonotonicity()
      : catalog_(testing::MakeTinyCatalog()),
        prices_(testing::MakeRoundPrices()),
        model_(&catalog_, &prices_) {}

  Catalog catalog_;
  PriceList prices_;
  CostModel model_;
};

TEST_P(CostMonotonicity, WiderSelectionNeverCheaperOrFaster) {
  Rng rng(GetParam());
  const double lo = rng.NextUniform(0.001, 0.4);
  const double hi = lo * rng.NextUniform(1.01, 2.0);
  const Query narrow = testing::MakeTinyQuery(catalog_, lo);
  const Query wide = testing::MakeTinyQuery(catalog_, std::min(1.0, hi));
  for (auto access : {PlanSpec::Access::kBackend,
                      PlanSpec::Access::kCacheScan}) {
    PlanSpec spec;
    spec.access = access;
    const ExecutionEstimate en = model_.EstimateExecution(narrow, spec);
    const ExecutionEstimate ew = model_.EstimateExecution(wide, spec);
    EXPECT_LE(en.time_seconds, ew.time_seconds * (1 + 1e-9));
    EXPECT_LE(en.cost.micros(), ew.cost.micros() + 1);
  }
}

TEST_P(CostMonotonicity, ParallelFactorsAreSane) {
  Rng rng(GetParam() + 1000);
  const double f = rng.NextUniform(0.0, 1.0);
  double prev_time = 2.0;
  for (uint32_t k = 1; k <= 16; ++k) {
    const double time = model_.ParallelTimeFactor(f, k);
    const double cpu = model_.ParallelCpuFactor(f, k);
    EXPECT_GT(time, 0.0);
    EXPECT_LE(time, 1.0 + 1e-12);
    EXPECT_GE(cpu, 1.0 - 1e-12);  // Parallelism never reduces total CPU.
    EXPECT_LE(time, prev_time + 1e-12);  // More nodes never slower.
    // Work conservation: k nodes for time t provide >= the serial work.
    EXPECT_GE(static_cast<double>(k) * time, 1.0 - 1e-9);
    prev_time = time;
  }
}

TEST_P(CostMonotonicity, SupersetIndexCostsAtLeastAsMuchToBuild) {
  Rng rng(GetParam() + 2000);
  const ColumnId date = *catalog_.FindColumn("fact.f_date");
  const ColumnId value = *catalog_.FindColumn("fact.f_value");
  std::vector<bool> cached(catalog_.num_columns(),
                           rng.NextBernoulli(0.5));
  const Money single =
      model_.IndexBuildCost(IndexKey(catalog_, {date}), cached);
  const Money composite =
      model_.IndexBuildCost(IndexKey(catalog_, {date, value}), cached);
  EXPECT_GE(composite, single);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CostMonotonicity,
                         ::testing::Range<uint64_t>(1, 21));

// --------------------------------------------------------------- economy

class EconomyInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EconomyInvariants, BooksBalanceUnderRandomTraffic) {
  const Catalog catalog = testing::MakeTinyCatalog();
  const PriceList prices = testing::MakeRoundPrices();
  const CostModel model(&catalog, &prices);
  StructureRegistry registry(&catalog);
  Rng rng(GetParam());

  EconomyOptions options;
  options.initial_credit = Money::FromDollars(rng.NextUniform(0.1, 20));
  options.regret_fraction_a = rng.NextUniform(0.001, 0.5);
  options.amortization_horizon = rng.NextInt(1, 500);
  options.conservative_provider = rng.NextBernoulli(0.5);
  options.model_build_latency = rng.NextBernoulli(0.5);
  options.maintenance_failure_fraction = rng.NextUniform(0.01, 0.9);
  options.selection = static_cast<PlanSelection>(rng.NextInt(0, 2));
  EconomyEngine engine(&catalog, &registry, &model, EnumeratorOptions{},
                       options);
  const ColumnId date = *catalog.FindColumn("fact.f_date");
  const ColumnId value = *catalog.FindColumn("fact.f_value");
  engine.SetIndexCandidates(
      {IndexKey(catalog, {date}), IndexKey(catalog, {date, value})});

  double now = 0;
  for (int i = 0; i < 300; ++i) {
    now += rng.NextExponential(20.0);
    const Query q = testing::MakeTinyQuery(
        catalog, rng.NextUniform(0.001, 0.4), static_cast<uint64_t>(i));
    StepBudget budget(
        Money::FromDollars(rng.NextUniform(0.00001, 0.01)),
        rng.NextUniform(0.01, 1000.0));
    const QueryOutcome outcome = engine.OnQuery(q, budget, now);

    // Identity: credit == initial + revenue - expenditure - investment.
    const CloudAccount& account = engine.account();
    ASSERT_EQ(account.credit(),
              account.initial_credit() + account.total_revenue() -
                  account.total_expenditure() - account.total_investment())
        << "seed " << GetParam() << " query " << i;

    // Profit is never negative; payments cover the plan price.
    ASSERT_GE(outcome.profit.micros(), 0);
    if (outcome.served) {
      ASSERT_GE(outcome.payment, outcome.chosen.Price());
      // Every structure of the executed plan is resident.
      for (StructureId id : outcome.chosen.structures) {
        ASSERT_TRUE(engine.cache().IsResident(id));
      }
    }

    // Regret is non-negative by construction.
    ASSERT_GE(engine.regret().Total().micros(), 0);

    // Structures invested this round are no longer regretted.
    for (StructureId id : outcome.investments) {
      ASSERT_TRUE(engine.regret().Get(id).IsZero());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EconomyInvariants,
                         ::testing::Range<uint64_t>(1, 16));

// ------------------------------------------------------------- simulator

struct SimCase {
  SchemeKind scheme;
  double interarrival;
  uint64_t seed;
};

class SimulatorInvariants : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimulatorInvariants, MetricsAreStructurallyConsistent) {
  static const Catalog catalog = MakeTpchCatalog(50.0);
  static const std::vector<QueryTemplate> templates = MakeTpchTemplates();
  const SimCase param = GetParam();

  ExperimentConfig config;
  config.scheme = param.scheme;
  config.workload.interarrival_seconds = param.interarrival;
  config.workload.seed = param.seed;
  config.sim.num_queries = 1200;
  config.customize_econ = [](EconScheme::Config& econ) {
    econ.economy.regret_fraction_a = 0.005;
    econ.economy.conservative_provider = false;
    econ.economy.initial_credit = Money::FromDollars(30);
    econ.economy.model_build_latency = false;
  };
  const SimMetrics m = RunExperiment(catalog, templates, config);

  EXPECT_EQ(m.queries, 1200u);
  EXPECT_LE(m.served, m.queries);
  EXPECT_EQ(m.served_in_cache + m.served_in_backend, m.served);
  EXPECT_GE(m.operating_cost.cpu_dollars, 0.0);
  EXPECT_GE(m.operating_cost.network_dollars, 0.0);
  EXPECT_GE(m.operating_cost.disk_dollars, 0.0);
  EXPECT_GE(m.operating_cost.io_dollars, 0.0);
  EXPECT_GT(m.operating_cost.Total(), 0.0);
  EXPECT_EQ(m.response_seconds.count(), static_cast<int64_t>(m.served));
  EXPECT_GE(m.response_hist.Quantile(1.0), m.response_hist.Quantile(0.0));
  EXPECT_GE(m.MeanResponse(), m.response_hist.Quantile(0.0));
  EXPECT_LE(m.MeanResponse(), m.response_hist.Quantile(1.0));
  // Cumulative cost timeline is non-decreasing and ends at the total.
  double last = -1;
  for (double v : m.cost_over_time.values()) {
    EXPECT_GE(v, last);
    last = v;
  }
  EXPECT_NEAR(last, m.operating_cost.Total(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SimulatorInvariants,
    ::testing::Values(SimCase{SchemeKind::kBypassYield, 1.0, 1},
                      SimCase{SchemeKind::kBypassYield, 60.0, 2},
                      SimCase{SchemeKind::kEconCol, 1.0, 3},
                      SimCase{SchemeKind::kEconCol, 60.0, 4},
                      SimCase{SchemeKind::kEconCheap, 1.0, 5},
                      SimCase{SchemeKind::kEconCheap, 60.0, 6},
                      SimCase{SchemeKind::kEconFast, 1.0, 7},
                      SimCase{SchemeKind::kEconFast, 60.0, 8}));

// ----------------------------------------------------------- trace replay

TEST(TraceReplayInvariant, ReplayedStreamDrivesIdenticalDecisions) {
  // A recorded trace must be a perfect substitute for the live generator:
  // the same scheme makes the same decisions query for query.
  const Catalog catalog = MakeTpchCatalog(50.0);
  Result<std::vector<ResolvedTemplate>> resolved =
      ResolveTemplates(catalog, MakeTpchTemplates());
  ASSERT_TRUE(resolved.ok());

  WorkloadOptions wl;
  wl.interarrival_seconds = 2.0;
  wl.seed = 31;
  WorkloadGenerator generator(&catalog, *resolved, wl);
  std::vector<Query> live;
  for (int i = 0; i < 600; ++i) live.push_back(generator.Next());

  const std::string csv = TraceWriter::ToCsv(live);
  Result<std::vector<Query>> replayed = TraceReader::FromCsv(csv, catalog);
  ASSERT_TRUE(replayed.ok());
  ASSERT_EQ(replayed->size(), live.size());

  const PriceList prices = PriceList::AmazonEc2_2009();
  const std::vector<StructureKey> indexes =
      RecommendIndexes(catalog, *resolved, 65);
  auto make_scheme = [&]() {
    EconScheme::Config config = EconScheme::EconCheapConfig();
    config.economy.regret_fraction_a = 0.005;
    config.economy.conservative_provider = false;
    config.economy.initial_credit = Money::FromDollars(30);
    config.economy.model_build_latency = false;
    config.seed = 5;
    return std::make_unique<EconScheme>(&catalog, &prices, indexes,
                                        std::move(config));
  };
  auto live_scheme = make_scheme();
  auto replay_scheme = make_scheme();
  for (size_t i = 0; i < live.size(); ++i) {
    const ServedQuery a =
        live_scheme->OnQuery(live[i], live[i].arrival_time);
    const ServedQuery b =
        replay_scheme->OnQuery((*replayed)[i], (*replayed)[i].arrival_time);
    ASSERT_EQ(a.spec.access, b.spec.access) << "query " << i;
    ASSERT_EQ(a.spec.cpu_nodes, b.spec.cpu_nodes) << "query " << i;
    ASSERT_EQ(a.payment, b.payment) << "query " << i;
    ASSERT_EQ(a.investments, b.investments) << "query " << i;
  }
  EXPECT_EQ(live_scheme->credit(), replay_scheme->credit());
}

// ---------------------------------------------------------------- budget

class BudgetProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BudgetProperty, AllShapesMonotoneAndBounded) {
  Rng rng(GetParam());
  const Money amount = Money::FromDollars(rng.NextUniform(0.001, 100.0));
  const double t_max = rng.NextUniform(0.01, 1000.0);
  const StepBudget step(amount, t_max);
  const LinearBudget linear(amount, t_max);
  const ConvexBudget convex(amount, t_max);
  const ConcaveBudget concave(amount, t_max);
  const std::vector<const BudgetFunction*> all = {&step, &linear, &convex,
                                                  &concave};
  for (const BudgetFunction* budget : all) {
    EXPECT_TRUE(budget->ValidateMonotone().ok());
    Money prev = amount + Money::FromMicros(1);
    for (int i = 1; i <= 32; ++i) {
      const double t = t_max * i / 32.0;
      const Money value = budget->At(t);
      EXPECT_LE(value, amount);      // Never above the headline amount.
      EXPECT_GE(value.micros(), 0);  // Never negative.
      EXPECT_LE(value, prev);        // Non-increasing.
      prev = value;
    }
    EXPECT_TRUE(budget->At(t_max * 1.0001).IsZero());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BudgetProperty,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace cloudcache
