#include "src/structure/structure.h"

#include <gtest/gtest.h>

#include "tests/testing/fixtures.h"

namespace cloudcache {
namespace {

class StructureTest : public ::testing::Test {
 protected:
  StructureTest() : catalog_(testing::MakeTinyCatalog()) {}
  Catalog catalog_;
};

TEST_F(StructureTest, ColumnKeyIdentity) {
  const ColumnId col = *catalog_.FindColumn("fact.f_date");
  const StructureKey a = ColumnKey(catalog_, col);
  const StructureKey b = ColumnKey(catalog_, col);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.type, StructureType::kColumn);
  EXPECT_EQ(a.table, 0u);
}

TEST_F(StructureTest, IndexKeyOrderMatters) {
  const ColumnId c1 = *catalog_.FindColumn("fact.f_date");
  const ColumnId c2 = *catalog_.FindColumn("fact.f_value");
  const StructureKey ab = IndexKey(catalog_, {c1, c2});
  const StructureKey ba = IndexKey(catalog_, {c2, c1});
  EXPECT_FALSE(ab == ba);
}

TEST_F(StructureTest, CpuNodeKeysDistinctByOrdinal) {
  EXPECT_FALSE(CpuNodeKey(0) == CpuNodeKey(1));
  EXPECT_EQ(CpuNodeKey(2), CpuNodeKey(2));
}

TEST_F(StructureTest, ToStringIsReadable) {
  const ColumnId col = *catalog_.FindColumn("fact.f_date");
  EXPECT_EQ(ColumnKey(catalog_, col).ToString(catalog_),
            "column(fact.f_date)");
  EXPECT_EQ(CpuNodeKey(3).ToString(catalog_), "cpu(3)");
  const ColumnId c2 = *catalog_.FindColumn("fact.f_value");
  EXPECT_EQ(IndexKey(catalog_, {col, c2}).ToString(catalog_),
            "index(fact: f_date,f_value)");
}

TEST_F(StructureTest, HashEqualForEqualKeys) {
  const ColumnId col = *catalog_.FindColumn("fact.f_key");
  StructureKeyHash hash;
  EXPECT_EQ(hash(ColumnKey(catalog_, col)), hash(ColumnKey(catalog_, col)));
}

TEST_F(StructureTest, StructureBytesColumn) {
  const ColumnId col = *catalog_.FindColumn("fact.f_key");
  EXPECT_EQ(StructureBytes(catalog_, ColumnKey(catalog_, col)),
            8u * 1'000'000);
}

TEST_F(StructureTest, StructureBytesIndexIncludesLocator) {
  const ColumnId col = *catalog_.FindColumn("fact.f_date");
  // Key column (8 B) + locator (8 B) per row.
  EXPECT_EQ(StructureBytes(catalog_, IndexKey(catalog_, {col})),
            16u * 1'000'000);
}

TEST_F(StructureTest, StructureBytesCpuNodeIsZero) {
  EXPECT_EQ(StructureBytes(catalog_, CpuNodeKey(0)), 0u);
}

TEST_F(StructureTest, RegistryInternsOnce) {
  StructureRegistry registry(&catalog_);
  const ColumnId col = *catalog_.FindColumn("fact.f_date");
  const StructureId a = registry.Intern(ColumnKey(catalog_, col));
  const StructureId b = registry.Intern(ColumnKey(catalog_, col));
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.size(), 1u);
}

TEST_F(StructureTest, RegistryAssignsDenseIds) {
  StructureRegistry registry(&catalog_);
  const StructureId a = registry.Intern(CpuNodeKey(0));
  const StructureId b = registry.Intern(CpuNodeKey(1));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(registry.key(b).ordinal, 1u);
}

TEST_F(StructureTest, RegistryFind) {
  StructureRegistry registry(&catalog_);
  const ColumnId col = *catalog_.FindColumn("fact.f_flag");
  EXPECT_FALSE(registry.Find(ColumnKey(catalog_, col)).ok());
  const StructureId id = registry.Intern(ColumnKey(catalog_, col));
  ASSERT_TRUE(registry.Find(ColumnKey(catalog_, col)).ok());
  EXPECT_EQ(*registry.Find(ColumnKey(catalog_, col)), id);
}

TEST_F(StructureTest, RegistryCachesBytes) {
  StructureRegistry registry(&catalog_);
  const ColumnId col = *catalog_.FindColumn("fact.f_key");
  const StructureId id = registry.Intern(ColumnKey(catalog_, col));
  EXPECT_EQ(registry.bytes(id), 8u * 1'000'000);
}

TEST_F(StructureTest, IdsOfTypeFilters) {
  StructureRegistry registry(&catalog_);
  registry.Intern(CpuNodeKey(0));
  const ColumnId col = *catalog_.FindColumn("fact.f_key");
  registry.Intern(ColumnKey(catalog_, col));
  registry.Intern(IndexKey(catalog_, {col}));
  EXPECT_EQ(registry.IdsOfType(StructureType::kCpuNode).size(), 1u);
  EXPECT_EQ(registry.IdsOfType(StructureType::kColumn).size(), 1u);
  EXPECT_EQ(registry.IdsOfType(StructureType::kIndex).size(), 1u);
}

TEST_F(StructureTest, TypeNames) {
  EXPECT_STREQ(StructureTypeToString(StructureType::kCpuNode), "cpu");
  EXPECT_STREQ(StructureTypeToString(StructureType::kColumn), "column");
  EXPECT_STREQ(StructureTypeToString(StructureType::kIndex), "index");
}

}  // namespace
}  // namespace cloudcache
