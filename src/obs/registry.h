#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/histogram.h"

namespace cloudcache {

struct SimMetrics;

namespace obs {

/// One key="value" pair qualifying a sample (Prometheus label syntax).
struct Label {
  std::string key;
  std::string value;
};

enum class MetricType { kCounter, kGauge, kSummary };

/// One exported value: family name + labels + value.
struct Sample {
  std::vector<Label> labels;
  double value = 0;
  /// Suffix appended to the family name ("_sum", "_count" for summary
  /// children; empty for plain samples).
  std::string suffix;
};

/// A named family of samples sharing one HELP/TYPE declaration.
struct Family {
  std::string name;
  std::string help;
  MetricType type = MetricType::kGauge;
  std::vector<Sample> samples;
};

/// An ordered collection of metric families with two deterministic
/// renderings: Prometheus text exposition (served by
/// `cloudcached --metrics-port`) and a JSON array sharing the exact same
/// names and labels (written by `cloudcache_sim --metrics-json`). One
/// naming scheme, three consumers — see docs/observability.md.
///
/// Families and samples render in insertion order; two registries built
/// from the same inputs produce byte-identical text.
class Registry {
 public:
  /// Appends a sample to the named family, creating it (with `help` and
  /// `type`) on first use. Later calls for the same family ignore
  /// help/type — the first declaration wins, as in Prometheus.
  void Add(const std::string& name, const std::string& help,
           MetricType type, double value, std::vector<Label> labels = {});

  void Counter(const std::string& name, const std::string& help,
               double value, std::vector<Label> labels = {}) {
    Add(name, help, MetricType::kCounter, value, std::move(labels));
  }
  void Gauge(const std::string& name, const std::string& help, double value,
             std::vector<Label> labels = {}) {
    Add(name, help, MetricType::kGauge, value, std::move(labels));
  }

  /// Exports a histogram as a Prometheus summary: one quantile sample per
  /// entry of `quantiles` (labelled quantile="0.5" etc.) plus the _sum
  /// and _count children.
  void Summary(const std::string& name, const std::string& help,
               const Histogram& hist, const std::vector<double>& quantiles,
               std::vector<Label> labels = {});

  const std::vector<Family>& families() const { return families_; }

  /// Prometheus text exposition format (version 0.0.4).
  std::string RenderPrometheus() const;
  /// The same samples as a JSON array:
  /// {"metrics":[{"name":...,"labels":{...},"value":...}, ...]}.
  std::string RenderJson() const;

 private:
  Family* FamilyFor(const std::string& name, const std::string& help,
                    MetricType type);

  std::vector<Family> families_;
};

/// The canonical export of a finished (or in-flight) run: every SimMetrics
/// aggregate, the response-time summary at p50/p95/p99, per-tenant slices,
/// and the cluster shape, under the `cloudcache_` prefix. This is the one
/// place metric names are assigned; the exposition endpoint, the JSON
/// export, and the docs all read from it.
void FillFromSimMetrics(const SimMetrics& metrics, Registry* registry);

/// Formats a double the way the renderers do: shortest-ish round-trip
/// (%.17g trimmed), deterministic across platforms.
std::string FormatMetricValue(double value);

}  // namespace obs
}  // namespace cloudcache
