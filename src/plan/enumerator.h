#pragma once

#include <vector>

#include "src/cache/cache_state.h"
#include "src/cost/cost_model.h"
#include "src/plan/plan.h"
#include "src/query/query.h"
#include "src/structure/structure.h"

namespace cloudcache {

/// Knobs restricting the plan space; the scheme variants of Section VII-A
/// are expressed through these (econ-col disables indexes and parallelism).
struct EnumeratorOptions {
  bool allow_indexes = true;
  bool allow_parallel = true;
  /// Node counts tried for cache plans; must contain 1.
  std::vector<uint32_t> node_options = {1, 2, 3, 4};
  /// Whether to emit hypothetical (PQpos) plans at all; the bypass-yield
  /// baseline has no regret machinery and turns this off.
  bool include_hypothetical = true;
};

/// Enumerates the candidate plan set PQ for a query (Section IV-B):
///
///  * the back-end plan (always exists, uses no cache structures),
///  * a cache column-scan plan over the accessed columns,
///  * one cache index plan per applicable candidate index (an index
///    applies when its leading key column carries one of the query's
///    predicates; the probe covers the maximal key prefix of predicate
///    columns, and the plan is covering if the key contains every accessed
///    column),
///  * each of the above at every allowed CPU-node count.
///
/// Structures already resident make a plan executable (PQexist); plans
/// referencing unbuilt structures are emitted as hypothetical (PQpos) when
/// include_hypothetical is set. The returned set is NOT skyline-filtered:
/// the economy first adds carried charges (Ca, owed maintenance), then
/// applies SkylineFilter.
class PlanEnumerator {
 public:
  PlanEnumerator(const CostModel* model, StructureRegistry* registry,
                 EnumeratorOptions options);

  /// Registers the advisor's index candidate pool (interning the keys).
  void SetIndexCandidates(const std::vector<StructureKey>& candidates);

  /// The interned candidate index ids.
  const std::vector<StructureId>& index_candidates() const {
    return index_candidates_;
  }

  /// Enumerates plans for `query` against the current cache contents.
  PlanSet Enumerate(const Query& query, const CacheState& cache) const;

  const EnumeratorOptions& options() const { return options_; }

 private:
  /// Adds per-node-count variants of a cache plan to `set`.
  void EmitNodeVariants(const Query& query, const CacheState& cache,
                        PlanSpec spec, std::vector<StructureId> structures,
                        PlanSet* set) const;

  const CostModel* model_;
  StructureRegistry* registry_;
  EnumeratorOptions options_;
  std::vector<StructureId> index_candidates_;
};

}  // namespace cloudcache
