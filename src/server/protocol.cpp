#include "src/server/protocol.h"

#include <cmath>

namespace cloudcache {
namespace server {

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kHello:
      return "Hello";
    case MessageType::kHelloAck:
      return "HelloAck";
    case MessageType::kQuery:
      return "Query";
    case MessageType::kOutcome:
      return "Outcome";
    case MessageType::kError:
      return "Error";
    case MessageType::kStats:
      return "Stats";
    case MessageType::kStatsAck:
      return "StatsAck";
    case MessageType::kShutdown:
      return "Shutdown";
    case MessageType::kShutdownAck:
      return "ShutdownAck";
    case MessageType::kStatsSubscribe:
      return "StatsSubscribe";
  }
  return "unknown";
}

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadFrame:
      return "bad-frame";
    case ErrorCode::kVersionMismatch:
      return "version-mismatch";
    case ErrorCode::kConfigMismatch:
      return "config-mismatch";
    case ErrorCode::kStreamClaimed:
      return "stream-claimed";
    case ErrorCode::kStreamOutOfRange:
      return "stream-out-of-range";
    case ErrorCode::kStreamDiverged:
      return "stream-diverged";
    case ErrorCode::kRunComplete:
      return "run-complete";
    case ErrorCode::kShuttingDown:
      return "shutting-down";
    case ErrorCode::kNotAllowed:
      return "not-allowed";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

Status PeekType(persist::Decoder* dec, MessageType* type) {
  uint8_t raw = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU8(&raw));
  if (raw < static_cast<uint8_t>(MessageType::kHello) ||
      raw > static_cast<uint8_t>(MessageType::kStatsSubscribe)) {
    return Status::InvalidArgument("unknown message type " +
                                   std::to_string(raw));
  }
  *type = static_cast<MessageType>(raw);
  return Status::OK();
}

void EncodeHello(const HelloMsg& msg, persist::Encoder* enc) {
  enc->PutU8(static_cast<uint8_t>(MessageType::kHello));
  enc->PutU32(msg.protocol_version);
  enc->PutU32(msg.stream_id);
  enc->PutU64(msg.config_hash);
}

Status DecodeHello(persist::Decoder* dec, HelloMsg* msg) {
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&msg->protocol_version));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&msg->stream_id));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&msg->config_hash));
  return dec->ExpectEnd();
}

void EncodeHelloAck(const HelloAckMsg& msg, persist::Encoder* enc) {
  enc->PutU8(static_cast<uint8_t>(MessageType::kHelloAck));
  enc->PutU32(msg.protocol_version);
  enc->PutU32(msg.stream_id);
  enc->PutU64(msg.config_hash);
  enc->PutU64(msg.num_queries);
  enc->PutU64(msg.next_query_id);
}

Status DecodeHelloAck(persist::Decoder* dec, HelloAckMsg* msg) {
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&msg->protocol_version));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&msg->stream_id));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&msg->config_hash));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&msg->num_queries));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&msg->next_query_id));
  return dec->ExpectEnd();
}

void EncodeQuery(const Query& query, persist::Encoder* enc) {
  enc->PutU8(static_cast<uint8_t>(MessageType::kQuery));
  enc->PutU64(query.id);
  enc->PutI64(query.template_id);
  enc->PutU32(query.table);
  enc->PutU64(query.output_columns.size());
  for (ColumnId column : query.output_columns) enc->PutU32(column);
  enc->PutU64(query.predicates.size());
  for (const Predicate& predicate : query.predicates) {
    enc->PutU32(predicate.column);
    enc->PutDouble(predicate.selectivity);
    enc->PutBool(predicate.equality);
    enc->PutBool(predicate.clustered);
  }
  enc->PutDouble(query.cpu_multiplier);
  enc->PutDouble(query.parallel_fraction);
  enc->PutU64(query.result_rows);
  enc->PutU64(query.result_bytes);
  enc->PutDouble(query.arrival_time);
  enc->PutU32(query.tenant_id);
}

Status DecodeQuery(persist::Decoder* dec, Query* query) {
  *query = Query();
  int64_t template_id = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&query->id));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadI64(&template_id));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&query->table));
  query->template_id = static_cast<int>(template_id);
  uint64_t columns = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&columns));
  query->output_columns.reserve(static_cast<size_t>(columns));
  for (uint64_t i = 0; i < columns; ++i) {
    uint32_t column = 0;
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&column));
    query->output_columns.push_back(column);
  }
  uint64_t predicates = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&predicates));
  query->predicates.reserve(static_cast<size_t>(predicates));
  for (uint64_t i = 0; i < predicates; ++i) {
    Predicate predicate;
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&predicate.column));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&predicate.selectivity));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadBool(&predicate.equality));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadBool(&predicate.clustered));
    // Same domain Query::Validate enforces; reject here so a hostile
    // frame never reaches the cost model.
    if (!(predicate.selectivity > 0) || predicate.selectivity > 1.0) {
      return Status::InvalidArgument("query predicate selectivity not in "
                                     "(0, 1]");
    }
    query->predicates.push_back(predicate);
  }
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&query->cpu_multiplier));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&query->parallel_fraction));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&query->result_rows));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&query->result_bytes));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&query->arrival_time));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&query->tenant_id));
  if (!std::isfinite(query->cpu_multiplier) ||
      !(query->cpu_multiplier > 0) ||
      !std::isfinite(query->parallel_fraction) ||
      query->parallel_fraction < 0 || query->parallel_fraction > 1.0 ||
      !std::isfinite(query->arrival_time) || query->arrival_time < 0) {
    return Status::InvalidArgument("query carries non-finite or "
                                   "out-of-domain numeric fields");
  }
  return dec->ExpectEnd();
}

void EncodeOutcome(const OutcomeMsg& msg, persist::Encoder* enc) {
  enc->PutU8(static_cast<uint8_t>(MessageType::kOutcome));
  enc->PutU64(msg.query_id);
  enc->PutU64(msg.global_index);
  enc->PutBool(msg.served);
  enc->PutU8(msg.access);
  enc->PutBool(msg.throttled);
  enc->PutDouble(msg.response_seconds);
  enc->PutI64(msg.payment_micros);
  enc->PutI64(msg.profit_micros);
  enc->PutBool(msg.has_budget_case);
  enc->PutU8(msg.budget_case);
  enc->PutU32(msg.investments);
  enc->PutU32(msg.evictions);
}

Status DecodeOutcome(persist::Decoder* dec, OutcomeMsg* msg) {
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&msg->query_id));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&msg->global_index));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadBool(&msg->served));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU8(&msg->access));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadBool(&msg->throttled));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&msg->response_seconds));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadI64(&msg->payment_micros));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadI64(&msg->profit_micros));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadBool(&msg->has_budget_case));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU8(&msg->budget_case));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&msg->investments));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&msg->evictions));
  if (msg->access > 2 || msg->budget_case > 2) {
    return Status::InvalidArgument(
        "outcome carries an unknown access kind or budget case");
  }
  return dec->ExpectEnd();
}

void EncodeError(const ErrorMsg& msg, persist::Encoder* enc) {
  enc->PutU8(static_cast<uint8_t>(MessageType::kError));
  enc->PutU8(static_cast<uint8_t>(msg.code));
  enc->PutString(msg.message);
}

Status DecodeError(persist::Decoder* dec, ErrorMsg* msg) {
  uint8_t code = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU8(&code));
  if (code < static_cast<uint8_t>(ErrorCode::kBadFrame) ||
      code > static_cast<uint8_t>(ErrorCode::kInternal)) {
    return Status::InvalidArgument("unknown error code " +
                                   std::to_string(code));
  }
  msg->code = static_cast<ErrorCode>(code);
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadString(&msg->message));
  return dec->ExpectEnd();
}

void EncodeStats(persist::Encoder* enc) {
  enc->PutU8(static_cast<uint8_t>(MessageType::kStats));
}

Status DecodeStats(persist::Decoder* dec) { return dec->ExpectEnd(); }

void EncodeStatsAck(const StatsAckMsg& msg, persist::Encoder* enc) {
  enc->PutU8(static_cast<uint8_t>(MessageType::kStatsAck));
  enc->PutU64(msg.processed);
  enc->PutU64(msg.num_queries);
  enc->PutU64(msg.served);
  enc->PutU32(msg.active_streams);
  enc->PutI64(msg.credit_micros);
  enc->PutU64(msg.served_in_cache);
  enc->PutU64(msg.throttled);
  enc->PutU64(msg.investments);
  enc->PutU64(msg.evictions);
  enc->PutU64(msg.streams.size());
  for (const StreamStatsMsg& stream : msg.streams) {
    enc->PutU32(stream.stream);
    enc->PutU64(stream.queries);
    enc->PutU64(stream.served);
    enc->PutU64(stream.throttled);
  }
}

Status DecodeStatsAck(persist::Decoder* dec, StatsAckMsg* msg) {
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&msg->processed));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&msg->num_queries));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&msg->served));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&msg->active_streams));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadI64(&msg->credit_micros));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&msg->served_in_cache));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&msg->throttled));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&msg->investments));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&msg->evictions));
  uint64_t streams = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&streams));
  msg->streams.clear();
  msg->streams.reserve(static_cast<size_t>(streams));
  for (uint64_t i = 0; i < streams; ++i) {
    StreamStatsMsg stream;
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&stream.stream));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&stream.queries));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&stream.served));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&stream.throttled));
    msg->streams.push_back(stream);
  }
  return dec->ExpectEnd();
}

void EncodeStatsSubscribe(const StatsSubscribeMsg& msg,
                          persist::Encoder* enc) {
  enc->PutU8(static_cast<uint8_t>(MessageType::kStatsSubscribe));
  enc->PutU64(msg.every);
}

Status DecodeStatsSubscribe(persist::Decoder* dec, StatsSubscribeMsg* msg) {
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&msg->every));
  if (msg->every == 0) {
    return Status::InvalidArgument("StatsSubscribe.every must be >= 1");
  }
  return dec->ExpectEnd();
}

void EncodeShutdown(persist::Encoder* enc) {
  enc->PutU8(static_cast<uint8_t>(MessageType::kShutdown));
}

Status DecodeShutdown(persist::Decoder* dec) { return dec->ExpectEnd(); }

void EncodeShutdownAck(persist::Encoder* enc) {
  enc->PutU8(static_cast<uint8_t>(MessageType::kShutdownAck));
}

Status DecodeShutdownAck(persist::Decoder* dec) { return dec->ExpectEnd(); }

}  // namespace server
}  // namespace cloudcache
