file(REMOVE_RECURSE
  "CMakeFiles/cloudcache_plan_tests.dir/plan/enumerator_test.cpp.o"
  "CMakeFiles/cloudcache_plan_tests.dir/plan/enumerator_test.cpp.o.d"
  "CMakeFiles/cloudcache_plan_tests.dir/plan/skyline_test.cpp.o"
  "CMakeFiles/cloudcache_plan_tests.dir/plan/skyline_test.cpp.o.d"
  "cloudcache_plan_tests"
  "cloudcache_plan_tests.pdb"
  "cloudcache_plan_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudcache_plan_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
