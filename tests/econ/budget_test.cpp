#include "src/econ/budget.h"

#include <gtest/gtest.h>

namespace cloudcache {
namespace {

TEST(StepBudgetTest, ConstantOverSupport) {
  StepBudget budget(Money::FromDollars(5), 10.0);
  EXPECT_EQ(budget.At(0.001), Money::FromDollars(5));
  EXPECT_EQ(budget.At(5.0), Money::FromDollars(5));
  EXPECT_EQ(budget.At(10.0), Money::FromDollars(5));
}

TEST(StepBudgetTest, ZeroOutsideSupport) {
  StepBudget budget(Money::FromDollars(5), 10.0);
  EXPECT_TRUE(budget.At(0.0).IsZero());
  EXPECT_TRUE(budget.At(-1.0).IsZero());
  EXPECT_TRUE(budget.At(10.0001).IsZero());
}

TEST(LinearBudgetTest, DescendsToZero) {
  LinearBudget budget(Money::FromDollars(10), 10.0);
  EXPECT_EQ(budget.At(5.0), Money::FromDollars(5));
  EXPECT_EQ(budget.At(10.0), Money());
  EXPECT_GT(budget.At(1.0), budget.At(9.0));
}

TEST(ConvexBudgetTest, DropsFastThenFlattens) {
  ConvexBudget budget(Money::FromDollars(100), 10.0);
  // Convex: value at midpoint below the linear chord (50).
  EXPECT_LT(budget.At(5.0), Money::FromDollars(50));
  EXPECT_EQ(budget.At(5.0), Money::FromDollars(25));
}

TEST(ConcaveBudgetTest, StaysHighThenPlunges) {
  ConcaveBudget budget(Money::FromDollars(100), 10.0);
  // Concave: value at midpoint above the linear chord.
  EXPECT_GT(budget.At(5.0), Money::FromDollars(50));
  EXPECT_EQ(budget.At(5.0), Money::FromDollars(75));
}

TEST(BudgetShapeTest, AllShapesAgreeAtExtremes) {
  const Money amount = Money::FromDollars(10);
  StepBudget step(amount, 10.0);
  LinearBudget linear(amount, 10.0);
  ConvexBudget convex(amount, 10.0);
  ConcaveBudget concave(amount, 10.0);
  // Near t=0 all shapes approach the full amount (step exactly).
  EXPECT_EQ(step.At(1e-9), amount);
  EXPECT_GT(linear.At(1e-6), amount * 0.999);
  EXPECT_GT(convex.At(1e-6), amount * 0.999);
  EXPECT_GT(concave.At(1e-6), amount * 0.999);
  // Beyond t_max all are zero.
  const std::vector<const BudgetFunction*> all = {&step, &linear, &convex,
                                                  &concave};
  for (const BudgetFunction* b : all) {
    EXPECT_TRUE(b->At(11.0).IsZero());
  }
}

TEST(BudgetValidateTest, MonotoneShapesPass) {
  EXPECT_TRUE(StepBudget(Money::FromDollars(1), 5).ValidateMonotone().ok());
  EXPECT_TRUE(
      LinearBudget(Money::FromDollars(1), 5).ValidateMonotone().ok());
  EXPECT_TRUE(
      ConvexBudget(Money::FromDollars(1), 5).ValidateMonotone().ok());
  EXPECT_TRUE(
      ConcaveBudget(Money::FromDollars(1), 5).ValidateMonotone().ok());
}

TEST(BudgetValidateTest, RejectsTooFewSamples) {
  EXPECT_FALSE(
      StepBudget(Money::FromDollars(1), 5).ValidateMonotone(1).ok());
}

TEST(PiecewiseBudgetTest, RightContinuousSteps) {
  Result<PiecewiseBudget> budget = PiecewiseBudget::Make(
      {{1.0, Money::FromDollars(10)}, {5.0, Money::FromDollars(4)}});
  ASSERT_TRUE(budget.ok());
  EXPECT_EQ(budget->At(0.5), Money::FromDollars(10));
  EXPECT_EQ(budget->At(1.0), Money::FromDollars(10));
  EXPECT_EQ(budget->At(1.01), Money::FromDollars(4));
  EXPECT_EQ(budget->At(5.0), Money::FromDollars(4));
  EXPECT_TRUE(budget->At(5.01).IsZero());
  EXPECT_EQ(budget->t_max(), 5.0);
}

TEST(PiecewiseBudgetTest, ValidatesMonotoneWhenDescending) {
  Result<PiecewiseBudget> budget = PiecewiseBudget::Make(
      {{1.0, Money::FromDollars(10)}, {5.0, Money::FromDollars(4)}});
  ASSERT_TRUE(budget.ok());
  EXPECT_TRUE(budget->ValidateMonotone().ok());
}

TEST(PiecewiseBudgetTest, DetectsIncreasingShape) {
  // The paper allows arbitrary user shapes but expects descent; the
  // validator flags an ascending one.
  Result<PiecewiseBudget> budget = PiecewiseBudget::Make(
      {{1.0, Money::FromDollars(1)}, {5.0, Money::FromDollars(10)}});
  ASSERT_TRUE(budget.ok());
  EXPECT_FALSE(budget->ValidateMonotone().ok());
}

TEST(PiecewiseBudgetTest, RejectsEmptyKnots) {
  EXPECT_FALSE(PiecewiseBudget::Make({}).ok());
}

TEST(PiecewiseBudgetTest, RejectsNonIncreasingTimes) {
  EXPECT_FALSE(PiecewiseBudget::Make({{2.0, Money::FromDollars(1)},
                                      {2.0, Money::FromDollars(1)}})
                   .ok());
  EXPECT_FALSE(PiecewiseBudget::Make({{-1.0, Money::FromDollars(1)}}).ok());
}

}  // namespace
}  // namespace cloudcache
