#include "src/util/units.h"

#include <gtest/gtest.h>

namespace cloudcache {
namespace {

TEST(UnitsTest, BinaryAndDecimalConstants) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024);
  EXPECT_EQ(kGiB, 1024ull * 1024 * 1024);
  EXPECT_EQ(kTiB, 1024ull * kGiB);
  EXPECT_EQ(kKB, 1000u);
  EXPECT_EQ(kMB, 1'000'000u);
  EXPECT_EQ(kGB, 1'000'000'000u);
  EXPECT_EQ(kTB, 1'000'000'000'000ull);
  // The paper's "2.5 TB" backend is decimal terabytes.
  EXPECT_EQ(25 * kTB / 10, 2'500'000'000'000ull);
}

TEST(UnitsTest, TimeConstants) {
  EXPECT_EQ(kMinute, 60.0);
  EXPECT_EQ(kHour, 3600.0);
  EXPECT_EQ(kDay, 86400.0);
  // Cloud billing month: 30 days, the convention 2009 price sheets used.
  EXPECT_EQ(kMonth, 30.0 * 86400.0);
}

TEST(UnitsTest, MbpsToBytesPerSec) {
  // 25 Mbps (the paper's WAN) = 3.125 MB/s.
  EXPECT_DOUBLE_EQ(MbpsToBytesPerSec(25.0), 3'125'000.0);
  EXPECT_DOUBLE_EQ(MbpsToBytesPerSec(8.0), 1e6);
  EXPECT_DOUBLE_EQ(MbpsToBytesPerSec(0.0), 0.0);
}

TEST(UnitsTest, BytesToGB) {
  EXPECT_DOUBLE_EQ(BytesToGB(kGB), 1.0);
  EXPECT_DOUBLE_EQ(BytesToGB(25 * kTB / 10), 2500.0);
  EXPECT_DOUBLE_EQ(BytesToGB(0), 0.0);
}

TEST(UnitsTest, TransferTimeSanity) {
  // A 120 GB column at 25 Mbps: the ~11 simulated hours DESIGN.md cites.
  const double seconds = 120e9 / MbpsToBytesPerSec(25.0);
  EXPECT_NEAR(seconds / kHour, 10.7, 0.3);
}

}  // namespace
}  // namespace cloudcache
