file(REMOVE_RECURSE
  "CMakeFiles/cloudcache_sim_tests.dir/sim/event_queue_test.cpp.o"
  "CMakeFiles/cloudcache_sim_tests.dir/sim/event_queue_test.cpp.o.d"
  "CMakeFiles/cloudcache_sim_tests.dir/sim/experiment_test.cpp.o"
  "CMakeFiles/cloudcache_sim_tests.dir/sim/experiment_test.cpp.o.d"
  "CMakeFiles/cloudcache_sim_tests.dir/sim/report_test.cpp.o"
  "CMakeFiles/cloudcache_sim_tests.dir/sim/report_test.cpp.o.d"
  "CMakeFiles/cloudcache_sim_tests.dir/sim/simulator_test.cpp.o"
  "CMakeFiles/cloudcache_sim_tests.dir/sim/simulator_test.cpp.o.d"
  "CMakeFiles/cloudcache_sim_tests.dir/sim/sweep_test.cpp.o"
  "CMakeFiles/cloudcache_sim_tests.dir/sim/sweep_test.cpp.o.d"
  "cloudcache_sim_tests"
  "cloudcache_sim_tests.pdb"
  "cloudcache_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloudcache_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
