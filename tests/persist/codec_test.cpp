#include "src/persist/codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

namespace cloudcache::persist {
namespace {

TEST(Crc32Test, KnownVectors) {
  // The IEEE 802.3 check value for the ASCII digits "123456789".
  const std::string digits = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(digits.data()),
                  digits.size()),
            0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(Crc32Test, SingleBitFlipsChangeTheChecksum) {
  std::vector<uint8_t> bytes(64, 0xA5);
  const uint32_t reference = Crc32(bytes);
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      bytes[i] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_NE(Crc32(bytes), reference) << "byte " << i << " bit " << bit;
      bytes[i] ^= static_cast<uint8_t>(1u << bit);
    }
  }
}

TEST(CodecTest, RoundTripsEveryScalarType) {
  Encoder enc;
  enc.PutU8(0xFE);
  enc.PutBool(true);
  enc.PutBool(false);
  enc.PutU32(0xDEADBEEFu);
  enc.PutU64(0x0123456789ABCDEFull);
  enc.PutI64(-42);
  enc.PutDouble(3.141592653589793);
  enc.PutMoney(Money::FromMicros(-7'000'001));
  enc.PutString("cloudcache");
  enc.PutString("");

  Decoder dec(enc.buffer().data(), enc.size());
  uint8_t u8 = 0;
  bool b = false;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double d = 0;
  Money money;
  std::string s;
  ASSERT_TRUE(dec.ReadU8(&u8).ok());
  EXPECT_EQ(u8, 0xFE);
  ASSERT_TRUE(dec.ReadBool(&b).ok());
  EXPECT_TRUE(b);
  ASSERT_TRUE(dec.ReadBool(&b).ok());
  EXPECT_FALSE(b);
  ASSERT_TRUE(dec.ReadU32(&u32).ok());
  EXPECT_EQ(u32, 0xDEADBEEFu);
  ASSERT_TRUE(dec.ReadU64(&u64).ok());
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  ASSERT_TRUE(dec.ReadI64(&i64).ok());
  EXPECT_EQ(i64, -42);
  ASSERT_TRUE(dec.ReadDouble(&d).ok());
  EXPECT_EQ(d, 3.141592653589793);
  ASSERT_TRUE(dec.ReadMoney(&money).ok());
  EXPECT_EQ(money.micros(), -7'000'001);
  ASSERT_TRUE(dec.ReadString(&s).ok());
  EXPECT_EQ(s, "cloudcache");
  ASSERT_TRUE(dec.ReadString(&s).ok());
  EXPECT_EQ(s, "");
  EXPECT_TRUE(dec.AtEnd());
  EXPECT_TRUE(dec.ExpectEnd().ok());
}

TEST(CodecTest, DoublesRoundTripBitForBit) {
  // The stats accumulators start min/max at +/-inf, and NaN payloads must
  // survive unchanged: the codec bit-casts, never converts.
  const double values[] = {
      0.0, -0.0, std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::denorm_min(), -1.5e308};
  Encoder enc;
  for (double v : values) enc.PutDouble(v);
  Decoder dec(enc.buffer().data(), enc.size());
  for (double v : values) {
    double out = 0;
    ASSERT_TRUE(dec.ReadDouble(&out).ok());
    uint64_t want = 0, got = 0;
    std::memcpy(&want, &v, sizeof(want));
    std::memcpy(&got, &out, sizeof(got));
    EXPECT_EQ(got, want);
  }
}

TEST(CodecTest, TruncationAtEveryBoundaryIsAnError) {
  Encoder enc;
  enc.PutU32(7);
  enc.PutU64(9);
  enc.PutString("abc");
  enc.PutDouble(1.25);
  // Replaying the reads over every proper prefix must fail with a Status
  // (not crash) at exactly the read that runs out of bytes.
  for (size_t cut = 0; cut < enc.size(); ++cut) {
    Decoder dec(enc.buffer().data(), cut);
    uint32_t u32 = 0;
    uint64_t u64 = 0;
    std::string s;
    double d = 0;
    Status status = dec.ReadU32(&u32);
    if (status.ok()) status = dec.ReadU64(&u64);
    if (status.ok()) status = dec.ReadString(&s);
    if (status.ok()) status = dec.ReadDouble(&d);
    EXPECT_FALSE(status.ok()) << "prefix of " << cut << " bytes";
    EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  }
}

TEST(CodecTest, ReadLengthRejectsCountsBeyondTheBuffer) {
  // A corrupt length prefix must fail in the decoder, not as an OOM in
  // the vector resize it was destined for.
  Encoder enc;
  enc.PutU64(std::numeric_limits<uint64_t>::max());
  Decoder dec(enc.buffer().data(), enc.size());
  uint64_t length = 0;
  const Status status = dec.ReadLength(&length);
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
}

TEST(CodecTest, CorruptBoolByteIsAnError) {
  const uint8_t byte = 2;
  Decoder dec(&byte, 1);
  bool out = false;
  EXPECT_EQ(dec.ReadBool(&out).code(), StatusCode::kInvalidArgument);
}

TEST(CodecTest, TrailingBytesAreAnError) {
  Encoder enc;
  enc.PutU32(1);
  enc.PutU8(0);
  Decoder dec(enc.buffer().data(), enc.size());
  uint32_t v = 0;
  ASSERT_TRUE(dec.ReadU32(&v).ok());
  EXPECT_FALSE(dec.ExpectEnd().ok());
}

}  // namespace
}  // namespace cloudcache::persist
