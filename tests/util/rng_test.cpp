#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace cloudcache {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedStaysInBound) {
  Rng rng(5);
  for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(9);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10'000; ++i) ++seen[rng.NextBounded(10)];
  for (int count : seen) EXPECT_GT(count, 800);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.15);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(29);
  double sum = 0, sq = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, ForkIsIndependentOfParentConsumption) {
  Rng parent(31);
  Rng fork_before = parent.Fork(1);
  parent.Next();
  parent.Next();
  Rng fork_after = parent.Fork(1);
  // Forking does not depend on how much the parent has consumed.
  EXPECT_EQ(fork_before.Next(), fork_after.Next());
}

TEST(RngTest, ForksWithDifferentIdsDiffer) {
  Rng parent(31);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(ZipfTest, UniformWhenSkewZero) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(37);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50'000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 600);
}

TEST(ZipfTest, PmfSumsToOne) {
  for (double skew : {0.5, 1.0, 1.5}) {
    ZipfSampler zipf(100, skew);
    double sum = 0;
    for (uint64_t r = 0; r < 100; ++r) sum += zipf.Pmf(r);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "skew=" << skew;
  }
}

TEST(ZipfTest, RankZeroIsMostPopular) {
  ZipfSampler zipf(50, 1.0);
  Rng rng(41);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 100'000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[49]);
}

TEST(ZipfTest, EmpiricalMatchesPmf) {
  ZipfSampler zipf(20, 1.2);
  Rng rng(43);
  std::vector<int> counts(20, 0);
  const int n = 200'000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (uint64_t r = 0; r < 20; ++r) {
    const double expected = zipf.Pmf(r) * n;
    EXPECT_NEAR(counts[r], expected, 5 * std::sqrt(expected) + 20)
        << "rank " << r;
  }
}

TEST(ZipfTest, SingleElementAlwaysZero) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(47);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

class ZipfSkewSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewSweep, SamplesStayInRange) {
  ZipfSampler zipf(1000, GetParam());
  Rng rng(53);
  for (int i = 0; i < 20'000; ++i) EXPECT_LT(zipf.Sample(rng), 1000u);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkewSweep,
                         ::testing::Values(0.0, 0.2, 0.5, 0.8, 0.99, 1.0,
                                           1.01, 1.5, 2.0, 3.0));

TEST(DiscreteSamplerTest, RespectsWeights) {
  DiscreteSampler sampler({1.0, 3.0, 6.0});
  Rng rng(59);
  std::vector<int> counts(3, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(rng)];
  EXPECT_NEAR(counts[0], n * 0.1, n * 0.01);
  EXPECT_NEAR(counts[1], n * 0.3, n * 0.015);
  EXPECT_NEAR(counts[2], n * 0.6, n * 0.015);
}

TEST(DiscreteSamplerTest, ZeroWeightNeverSampled) {
  DiscreteSampler sampler({0.0, 1.0});
  Rng rng(61);
  for (int i = 0; i < 10'000; ++i) EXPECT_EQ(sampler.Sample(rng), 1u);
}

TEST(DiscreteSamplerTest, SingleBucket) {
  DiscreteSampler sampler({5.0});
  Rng rng(67);
  EXPECT_EQ(sampler.Sample(rng), 0u);
}

}  // namespace
}  // namespace cloudcache
