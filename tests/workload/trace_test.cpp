#include "src/workload/trace.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "src/catalog/tpch.h"
#include "src/workload/generator.h"
#include "tests/testing/fixtures.h"

namespace cloudcache {
namespace {

std::vector<Query> MakeQueries(const Catalog& catalog, int count) {
  std::vector<Query> queries;
  for (int i = 0; i < count; ++i) {
    Query q = testing::MakeTinyQuery(catalog, 0.01 + 0.001 * i, i);
    q.arrival_time = i * 2.5;
    queries.push_back(std::move(q));
  }
  return queries;
}

TEST(TraceTest, RoundTripsThroughString) {
  const Catalog catalog = testing::MakeTinyCatalog();
  const std::vector<Query> queries = MakeQueries(catalog, 5);
  const std::string csv = TraceWriter::ToCsv(queries);
  Result<std::vector<Query>> back = TraceReader::FromCsv(csv, catalog);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    const Query& a = queries[i];
    const Query& b = (*back)[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.table, b.table);
    EXPECT_DOUBLE_EQ(a.arrival_time, b.arrival_time);
    EXPECT_EQ(a.output_columns, b.output_columns);
    EXPECT_EQ(a.result_rows, b.result_rows);
    EXPECT_EQ(a.result_bytes, b.result_bytes);
    ASSERT_EQ(a.predicates.size(), b.predicates.size());
    for (size_t p = 0; p < a.predicates.size(); ++p) {
      EXPECT_EQ(a.predicates[p].column, b.predicates[p].column);
      EXPECT_NEAR(a.predicates[p].selectivity,
                  b.predicates[p].selectivity, 1e-12);
      EXPECT_EQ(a.predicates[p].equality, b.predicates[p].equality);
      EXPECT_EQ(a.predicates[p].clustered, b.predicates[p].clustered);
    }
  }
}

TEST(TraceTest, RoundTripsThroughFile) {
  const Catalog catalog = testing::MakeTinyCatalog();
  const std::vector<Query> queries = MakeQueries(catalog, 3);
  const std::string path = ::testing::TempDir() + "/trace_test.csv";
  ASSERT_TRUE(TraceWriter::Write(path, queries).ok());
  Result<std::vector<Query>> back = TraceReader::Read(path, catalog);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 3u);
  std::remove(path.c_str());
}

TEST(TraceTest, GeneratedWorkloadRoundTrips) {
  const Catalog catalog = MakeTpchCatalog(1.0);
  Result<std::vector<ResolvedTemplate>> templates =
      ResolveTemplates(catalog, MakeTpchTemplates());
  ASSERT_TRUE(templates.ok());
  WorkloadGenerator gen(&catalog, *templates, {});
  std::vector<Query> queries;
  for (int i = 0; i < 100; ++i) queries.push_back(gen.Next());
  const std::string csv = TraceWriter::ToCsv(queries);
  Result<std::vector<Query>> back = TraceReader::FromCsv(csv, catalog);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->size(), queries.size());
}

TEST(TraceTest, RejectsMissingHeader) {
  const Catalog catalog = testing::MakeTinyCatalog();
  EXPECT_FALSE(TraceReader::FromCsv("not,a,trace\n", catalog).ok());
  EXPECT_FALSE(TraceReader::FromCsv("", catalog).ok());
}

TEST(TraceTest, RejectsWrongFieldCount) {
  const Catalog catalog = testing::MakeTinyCatalog();
  const std::string csv =
      TraceWriter::ToCsv({}) + "1,2,3\n";  // Header + malformed line.
  EXPECT_FALSE(TraceReader::FromCsv(csv, catalog).ok());
}

TEST(TraceTest, RejectsInvalidQueries) {
  const Catalog catalog = testing::MakeTinyCatalog();
  std::vector<Query> queries = MakeQueries(catalog, 1);
  queries[0].table = 99;  // Out of range.
  const std::string csv = TraceWriter::ToCsv(queries);
  const auto result = TraceReader::FromCsv(csv, catalog);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(TraceTest, RejectsGarbageNumbers) {
  const Catalog catalog = testing::MakeTinyCatalog();
  std::string csv = TraceWriter::ToCsv(MakeQueries(catalog, 1));
  // Replace the data line with one whose arrival field is not a number.
  csv = csv.substr(0, csv.find('\n') + 1) +
        "0,0,0,abc,1,0.9,1,16,0;2,1:0.5:0:1\n";
  EXPECT_FALSE(TraceReader::FromCsv(csv, catalog).ok());
}

TEST(TraceTest, SkipsBlankLines) {
  const Catalog catalog = testing::MakeTinyCatalog();
  std::string csv = TraceWriter::ToCsv(MakeQueries(catalog, 2));
  csv += "\n\n";
  Result<std::vector<Query>> back = TraceReader::FromCsv(csv, catalog);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 2u);
}

TEST(TraceTest, EmptyTraceIsValid) {
  const Catalog catalog = testing::MakeTinyCatalog();
  const std::string csv = TraceWriter::ToCsv({});
  Result<std::vector<Query>> back = TraceReader::FromCsv(csv, catalog);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

}  // namespace
}  // namespace cloudcache
