#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/cluster/metrics.h"
#include "src/econ/fairness.h"
#include "src/obs/histogram.h"
#include "src/util/money.h"
#include "src/util/stats.h"

namespace cloudcache {

/// Metered operating cost decomposed by resource — the quantities behind
/// Fig. 4. All values in dollars at the metered (real) price list.
struct ResourceBreakdown {
  double cpu_dollars = 0;
  double network_dollars = 0;
  double disk_dollars = 0;
  double io_dollars = 0;

  double Total() const {
    return cpu_dollars + network_dollars + disk_dollars + io_dollars;
  }

  ResourceBreakdown& operator+=(const ResourceBreakdown& other) {
    cpu_dollars += other.cpu_dollars;
    network_dollars += other.network_dollars;
    disk_dollars += other.disk_dollars;
    io_dollars += other.io_dollars;
    return *this;
  }
};

/// Per-tenant slice of a multi-tenant run: what one query stream consumed
/// and paid. `operating_cost` covers execution and builds billed to this
/// tenant's queries; shared-infrastructure rent (disk byte-seconds, node
/// reservations) is metered only on the run-wide breakdown because no
/// single tenant owns the shared cache, so summing these over tenants
/// yields the run total minus rent.
struct TenantMetrics {
  uint32_t tenant_id = 0;

  // --- Traffic mix.
  uint64_t queries = 0;
  uint64_t served = 0;
  uint64_t served_in_cache = 0;
  uint64_t served_in_backend = 0;
  uint64_t wan_bytes = 0;

  // --- Response time over this tenant's served queries: moments from
  // the running stats, quantiles from the deterministic histogram (fed
  // the identical samples).
  RunningStats response_seconds;
  obs::Histogram response_hist;

  // --- Execution + build dollars billed to this tenant's queries.
  ResourceBreakdown operating_cost;

  // --- Economic identity (economy schemes only).
  Money revenue;
  Money profit;
  /// Regret the economy holds on this tenant's behalf at run end (the
  /// tenant's unserved demand for faster/cheaper structures).
  Money final_regret;
  uint64_t case_a = 0;
  uint64_t case_b = 0;
  uint64_t case_c = 0;

  // --- Adaptation the tenant's queries triggered.
  uint64_t investments = 0;
  uint64_t evictions = 0;

  // --- Queries served while the tenant was under admission throttling
  // (still served and billed; only their regret went unbooked).
  uint64_t throttled = 0;

  double MeanResponse() const { return response_seconds.mean(); }
  double CacheHitRate() const {
    return served == 0 ? 0.0
                       : static_cast<double>(served_in_cache) /
                             static_cast<double>(served);
  }
};

/// Everything one simulation run measures.
struct SimMetrics {
  std::string scheme_name;

  // --- Fig. 5: response time over served queries. The histogram carries
  // the quantiles (p50/p95/p99); both accumulators see exactly the served
  // samples, in arrival order, on every driver.
  RunningStats response_seconds;
  obs::Histogram response_hist;

  // --- Fig. 4: metered operating cost.
  ResourceBreakdown operating_cost;

  // --- Economy health.
  Money revenue;
  Money profit;
  Money final_credit;

  // --- Traffic mix.
  uint64_t queries = 0;
  uint64_t served = 0;
  uint64_t served_in_cache = 0;
  uint64_t served_in_backend = 0;
  uint64_t wan_bytes = 0;

  // --- Adaptation activity.
  uint64_t investments = 0;
  uint64_t evictions = 0;
  uint64_t throttled = 0;

  // --- Budget case mix (economy schemes only).
  uint64_t case_a = 0;
  uint64_t case_b = 0;
  uint64_t case_c = 0;

  // --- Final cache shape.
  uint64_t final_resident_bytes = 0;
  uint32_t final_extra_nodes = 0;

  // --- Timelines (downsampled on report).
  TimeSeries cost_over_time;    // Cumulative operating dollars.
  TimeSeries credit_over_time;  // CR in dollars.

  // --- Per-tenant slices. Sized to the tenant count on the multi-tenant
  // simulation path (even for one tenant); empty on the classic
  // single-stream path, whose aggregates above are the whole story.
  std::vector<TenantMetrics> tenants;

  // --- Fairness over the tenant slices (ComputeFairness at run end).
  // Left at its trivially-fair defaults on the classic path — which is
  // exactly what a one-tenant merged run computes, preserving the
  // `--tenants=1` bit-for-bit equivalence.
  FairnessReport fairness;

  // --- Cluster shape (Scheme::DescribeCluster at run end). Inert —
  // active = false, all zeros, no node slices — on the single-node path.
  ClusterMetrics cluster;

  /// Mean response time in seconds (0 if nothing served).
  double MeanResponse() const { return response_seconds.mean(); }
  /// Fraction of served queries answered from the cache.
  double CacheHitRate() const {
    return served == 0 ? 0.0
                       : static_cast<double>(served_in_cache) /
                             static_cast<double>(served);
  }
};

}  // namespace cloudcache
