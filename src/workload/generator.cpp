#include "src/workload/generator.h"

#include "src/persist/util_io.h"
#include "src/util/logging.h"

namespace cloudcache {

WorkloadGenerator::WorkloadGenerator(
    const Catalog* catalog, std::vector<ResolvedTemplate> templates,
    WorkloadOptions options)
    : catalog_(catalog),
      templates_(std::move(templates)),
      options_(options),
      rng_(options.seed),
      popularity_(templates_.size(), options.popularity_skew) {
  CLOUDCACHE_CHECK(!templates_.empty());
  CLOUDCACHE_CHECK_GT(options_.interarrival_seconds, 0.0);
}

size_t WorkloadGenerator::RankOf(size_t index, uint64_t phase) const {
  // The ranking rotates one position per phase: the template that was
  // hottest cools off and the next one heats up — a slow workload drift
  // that forces the cache to adapt (and, at long inter-arrival times, to
  // evict structures it already paid for, per Section VII-B). The static
  // popularity_offset rotates the whole schedule so co-tenant streams run
  // distinct mixes.
  return (index + phase + options_.popularity_offset) % templates_.size();
}

size_t WorkloadGenerator::DrawTemplate() {
  if (have_previous_ &&
      rng_.NextBernoulli(options_.repeat_probability)) {
    return previous_template_;
  }
  const uint64_t phase = options_.drift_period == 0
                             ? 0
                             : next_id_ / options_.drift_period;
  const uint64_t rank = popularity_.Sample(rng_);
  // Find the template whose current rank equals the drawn rank.
  for (size_t i = 0; i < templates_.size(); ++i) {
    if (RankOf(i, phase) == rank) return i;
  }
  return 0;  // Unreachable: ranks are a permutation.
}

Query WorkloadGenerator::Next() {
  const size_t tmpl = DrawTemplate();
  previous_template_ = tmpl;
  have_previous_ = true;

  Query query = InstantiateQuery(templates_[tmpl], *catalog_, rng_,
                                 static_cast<int>(tmpl), next_id_,
                                 options_.selectivity_scale);
  query.arrival_time = next_arrival_;
  query.tenant_id = options_.tenant_id;

  ++next_id_;
  switch (options_.arrival) {
    case WorkloadOptions::Arrival::kFixed:
      next_arrival_ += options_.interarrival_seconds;
      break;
    case WorkloadOptions::Arrival::kPoisson:
      next_arrival_ += rng_.NextExponential(options_.interarrival_seconds);
      break;
  }
  return query;
}

void WorkloadGenerator::SaveState(persist::Encoder* enc) const {
  persist::SaveRng(rng_, enc);
  enc->PutU64(next_id_);
  enc->PutDouble(next_arrival_);
  enc->PutU64(previous_template_);
  enc->PutBool(have_previous_);
}

Status WorkloadGenerator::RestoreState(persist::Decoder* dec) {
  CLOUDCACHE_RETURN_IF_ERROR(persist::RestoreRng(dec, &rng_));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&next_id_));
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadDouble(&next_arrival_));
  uint64_t previous = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU64(&previous));
  if (previous >= templates_.size()) {
    return Status::InvalidArgument(
        "snapshot workload cursor names template " + std::to_string(previous) +
        " but this run has only " + std::to_string(templates_.size()));
  }
  previous_template_ = static_cast<size_t>(previous);
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadBool(&have_previous_));
  return Status::OK();
}

}  // namespace cloudcache
