#include "src/econ/regret.h"

#include <algorithm>

#include "src/util/logging.h"

namespace cloudcache {

void RegretLedger::Add(StructureId id, Money amount) {
  CLOUDCACHE_CHECK_GE(amount.micros(), 0);
  if (amount.IsZero()) return;
  if (id >= amounts_.size()) amounts_.resize(id + 1, Money());
  if (amounts_[id].IsZero()) ++nonzero_;
  amounts_[id] += amount;
  total_ += amount;
  sorted_stale_ = true;
}

void RegretLedger::Distribute(const std::vector<StructureId>& structures,
                              Money total) {
  if (structures.empty() || total.IsZero()) return;
  const auto count = static_cast<int64_t>(structures.size());
  for (int64_t i = 0; i < count; ++i) {
    Add(structures[static_cast<size_t>(i)], EvenShare(total, count, i));
  }
}

Money RegretLedger::Get(StructureId id) const {
  return id < amounts_.size() ? amounts_[id] : Money();
}

Money RegretLedger::Clear(StructureId id) {
  if (id >= amounts_.size() || amounts_[id].IsZero()) return Money();
  const Money forfeited = amounts_[id];
  amounts_[id] = Money();
  --nonzero_;
  total_ -= forfeited;
  sorted_stale_ = true;
  return forfeited;
}

void RegretLedger::Subtract(StructureId id, Money amount) {
  CLOUDCACHE_CHECK_GE(amount.micros(), 0);
  if (amount.IsZero()) return;
  CLOUDCACHE_CHECK_LT(id, amounts_.size());
  CLOUDCACHE_CHECK_GE(amounts_[id].micros(), amount.micros());
  amounts_[id] -= amount;
  if (amounts_[id].IsZero()) --nonzero_;
  total_ -= amount;
  sorted_stale_ = true;
}

void RegretLedger::SaveState(persist::Encoder* enc) const {
  enc->PutU64(nonzero_);
  ForEachNonZero([enc](StructureId id, Money amount) {
    enc->PutU32(id);
    enc->PutMoney(amount);
  });
}

Status RegretLedger::RestoreState(persist::Decoder* dec) {
  amounts_.clear();
  total_ = Money();
  nonzero_ = 0;
  sorted_.clear();
  sorted_stale_ = true;
  uint64_t count = 0;
  CLOUDCACHE_RETURN_IF_ERROR(dec->ReadLength(&count));
  StructureId previous = 0;
  for (uint64_t i = 0; i < count; ++i) {
    StructureId id = 0;
    Money amount;
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadU32(&id));
    CLOUDCACHE_RETURN_IF_ERROR(dec->ReadMoney(&amount));
    if (i > 0 && id <= previous) {
      return Status::InvalidArgument(
          "snapshot regret ledger ids are not strictly ascending");
    }
    if (amount.micros() <= 0) {
      return Status::InvalidArgument(
          "snapshot regret ledger holds a non-positive entry");
    }
    previous = id;
    Add(id, amount);
  }
  return Status::OK();
}

const std::vector<std::pair<StructureId, Money>>&
RegretLedger::NonZeroDescending() const {
  if (sorted_stale_) {
    sorted_.clear();
    ForEachNonZero([this](StructureId id, Money amount) {
      sorted_.emplace_back(id, amount);
    });
    std::sort(sorted_.begin(), sorted_.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    sorted_stale_ = false;
  }
  return sorted_;
}

}  // namespace cloudcache
