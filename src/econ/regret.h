#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "src/persist/codec.h"
#include "src/structure/structure.h"
#include "src/util/money.h"

namespace cloudcache {

/// The array `regretS` of Section IV-C: accumulated regret value per
/// physical structure.
///
/// "The regret for a non-chosen query plan PQ is added to the positions in
/// regretS that correspond to the S that are employed by PQ. The
/// accumulated regret value for each S shows the overall regret of the
/// cloud for not employing it in executed query plans."
///
/// Amounts are exact Money; a plan's regret is split over its structures
/// with EvenShare so no micro-dollar is lost or invented.
///
/// Layout: StructureIds are small dense integers (registry interning
/// hands them out consecutively), so the ledger is a flat structure-of-
/// arrays — one Money per id — rather than a hash map. The decision loop
/// touches the ledger hundreds of times per query (Eq. 1/2 distribution
/// over every non-chosen plan), and the flat scan layout turns each of
/// those touches into one array write.
class RegretLedger {
 public:
  /// Adds regret to one structure. Negative additions are a bug.
  void Add(StructureId id, Money amount);

  /// Splits `total` evenly over `structures` (EvenShare distribution).
  void Distribute(const std::vector<StructureId>& structures, Money total);

  /// Accumulated regret of `id` (zero if never touched).
  Money Get(StructureId id) const;

  /// Forgets `id` (invested in, or garbage-collected from the candidate
  /// pool). Returns the forfeited amount.
  Money Clear(StructureId id);

  /// Removes exactly `amount` from `id`'s entry, which must hold at least
  /// that much (the tenant ledgers partition the global one, so a tenant
  /// share can always be subtracted from the global entry). Used when a
  /// throttled tenant's standing regret is forfeited out of the global
  /// ledger.
  void Subtract(StructureId id, Money amount);

  /// Visits every non-zero entry as fn(id, amount), in ascending id
  /// order. Forfeiture only subtracts per entry, which commutes, so
  /// visit order never reaches the metrics — but the order is
  /// deterministic anyway (the flat array has one).
  template <typename Fn>
  void ForEachNonZero(Fn&& fn) const {
    for (StructureId id = 0; id < amounts_.size(); ++id) {
      if (!amounts_[id].IsZero()) fn(id, amounts_[id]);
    }
  }

  /// True iff pred(id, amount) holds for some non-zero entry; stops at
  /// the first hit (ascending-id scan). The investment loop's fast path:
  /// one flat scan decides whether Eq. 3 could fire at all before paying
  /// for the sorted descending view.
  template <typename Pred>
  bool AnyNonZero(Pred&& pred) const {
    for (StructureId id = 0; id < amounts_.size(); ++id) {
      if (!amounts_[id].IsZero() && pred(id, amounts_[id])) return true;
    }
    return false;
  }

  /// Sum over all structures (maintained incrementally; O(1)).
  Money Total() const { return total_; }

  /// All entries with non-zero regret, descending by amount (ties by id).
  ///
  /// Maintained incrementally: the sorted view is rebuilt (into a reused
  /// scratch vector) only when a mutation dirtied it since the last call —
  /// MaybeInvest runs once per query, so quiet stretches pay nothing. The
  /// reference is a snapshot: mutating the ledger (Add/Clear) marks it
  /// stale for the *next* call but leaves the returned storage untouched,
  /// so the investment loop may Clear entries while iterating it.
  const std::vector<std::pair<StructureId, Money>>& NonZeroDescending() const;

  /// Number of structures with non-zero regret.
  size_t size() const { return nonzero_; }

  /// Checkpoint support: saves the sparse non-zero entries in ascending id
  /// order; restore replays them through Add, rebuilding the total and the
  /// non-zero count and leaving the sorted view stale (it is a cache).
  void SaveState(persist::Encoder* enc) const;
  Status RestoreState(persist::Decoder* dec);

 private:
  /// Flat per-id amounts (index = StructureId); zero means "no entry".
  std::vector<Money> amounts_;
  Money total_;
  size_t nonzero_ = 0;
  /// Cached NonZeroDescending view (lazily rebuilt; see above).
  mutable std::vector<std::pair<StructureId, Money>> sorted_;
  mutable bool sorted_stale_ = true;
};

}  // namespace cloudcache
