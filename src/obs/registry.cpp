#include "src/obs/registry.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cloudcache {
namespace obs {

namespace {

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kSummary:
      return "summary";
  }
  return "untyped";
}

/// Escapes a label value per the exposition format: backslash, quote, and
/// newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string FormatMetricValue(double value) {
  // Shortest %.*g form that parses back to the identical double: "42"
  // stays "42", irrationals get exactly the digits they need. Bounded at
  // 17 significant digits, which always round-trips.
  char buf[64];
  // Integers exact in a double print without an exponent ("200", not
  // "2e+02") — counters should read as counts.
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
  }
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

Family* Registry::FamilyFor(const std::string& name,
                            const std::string& help, MetricType type) {
  for (Family& family : families_) {
    if (family.name == name) return &family;
  }
  families_.push_back(Family{name, help, type, {}});
  return &families_.back();
}

void Registry::Add(const std::string& name, const std::string& help,
                   MetricType type, double value,
                   std::vector<Label> labels) {
  Family* family = FamilyFor(name, help, type);
  Sample sample;
  sample.labels = std::move(labels);
  sample.value = value;
  family->samples.push_back(std::move(sample));
}

void Registry::Summary(const std::string& name, const std::string& help,
                       const Histogram& hist,
                       const std::vector<double>& quantiles,
                       std::vector<Label> labels) {
  Family* family = FamilyFor(name, help, MetricType::kSummary);
  for (double q : quantiles) {
    Sample sample;
    sample.labels = labels;
    sample.labels.push_back(Label{"quantile", FormatMetricValue(q)});
    sample.value = hist.Quantile(q);
    family->samples.push_back(std::move(sample));
  }
  Sample sum;
  sum.labels = labels;
  sum.suffix = "_sum";
  sum.value = hist.sum();
  family->samples.push_back(std::move(sum));
  Sample count;
  count.labels = std::move(labels);
  count.suffix = "_count";
  count.value = static_cast<double>(hist.count());
  family->samples.push_back(std::move(count));
}

std::string Registry::RenderPrometheus() const {
  std::string out;
  for (const Family& family : families_) {
    out += "# HELP " + family.name + " " + family.help + "\n";
    out += "# TYPE " + family.name + " " + TypeName(family.type) + "\n";
    for (const Sample& sample : family.samples) {
      out += family.name + sample.suffix;
      if (!sample.labels.empty()) {
        out += "{";
        for (size_t i = 0; i < sample.labels.size(); ++i) {
          if (i > 0) out += ",";
          out += sample.labels[i].key + "=\"" +
                 EscapeLabelValue(sample.labels[i].value) + "\"";
        }
        out += "}";
      }
      out += " " + FormatMetricValue(sample.value) + "\n";
    }
  }
  return out;
}

std::string Registry::RenderJson() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const Family& family : families_) {
    for (const Sample& sample : family.samples) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":\"" + family.name + sample.suffix + "\"";
      out += ",\"type\":\"";
      out += TypeName(family.type);
      out += "\"";
      if (!sample.labels.empty()) {
        out += ",\"labels\":{";
        for (size_t i = 0; i < sample.labels.size(); ++i) {
          if (i > 0) out += ",";
          out += "\"" + sample.labels[i].key + "\":\"" +
                 EscapeLabelValue(sample.labels[i].value) + "\"";
        }
        out += "}";
      }
      out += ",\"value\":" + FormatMetricValue(sample.value) + "}";
    }
  }
  out += "]}\n";
  return out;
}

}  // namespace obs
}  // namespace cloudcache
