#!/usr/bin/env python3
"""Validates Prometheus text exposition scraped from cloudcached.

Reads an exposition body (a file path argument, or stdin with "-") and
checks the subset of the text format cloudcached emits:

  * every line is a `# HELP`, a `# TYPE`, or a sample line;
  * `# TYPE` values are counter / gauge / summary;
  * sample lines parse as  name{label="value",...} <float>  with metric
    and label names matching the Prometheus grammar and label values
    using only the \\\\ \\" \\n escapes;
  * every sample belongs to the most recent `# TYPE` family (allowing
    the `_sum` / `_count` suffixes on summaries);
  * at least one `cloudcache_` family is present, so an empty or error
    body cannot pass.

Exit status: 0 when the body validates, 1 otherwise (problems are
listed one per line as line-number: message). Run with --self-test to
verify the checker against planted good and bad cases.
"""
import re
import sys

NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\["\\n])*)"')
SAMPLE = re.compile(r"^(" + NAME + r")(\{(.*)\})? (\S+)$")
TYPES = ("counter", "gauge", "summary")


def parse_labels(body: str) -> bool:
    """True when `body` is a well-formed k="v",k="v" label list."""
    pos = 0
    while pos < len(body):
        match = LABEL.match(body, pos)
        if not match:
            return False
        pos = match.end()
        if pos < len(body):
            if body[pos] != ",":
                return False
            pos += 1
    return pos == len(body)


def check_text(text: str) -> list:
    problems = []
    family = None
    saw_cloudcache = False
    if not text.endswith("\n"):
        problems.append("0: body does not end with a newline")
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in TYPES:
                problems.append(f"{number}: bad TYPE line: {line}")
                continue
            family = parts[2]
            if family.startswith("cloudcache_"):
                saw_cloudcache = True
            continue
        if line.startswith("#"):
            problems.append(f"{number}: unknown comment form: {line}")
            continue
        match = SAMPLE.match(line)
        if not match:
            problems.append(f"{number}: unparsable sample: {line}")
            continue
        name, _, labels, value = match.groups()
        if family is None or name not in (
            family,
            family + "_sum",
            family + "_count",
        ):
            problems.append(
                f"{number}: sample {name} outside its TYPE family"
            )
        if labels and not parse_labels(labels):
            problems.append(f"{number}: bad label list: {{{labels}}}")
        try:
            float(value)
        except ValueError:
            problems.append(f"{number}: non-numeric value: {value}")
    if not saw_cloudcache and not any(p.startswith("0:") for p in problems):
        problems.append("0: no cloudcache_ family in the body")
    return problems


GOOD = """\
# HELP cloudcache_queries_total Queries offered to the scheme
# TYPE cloudcache_queries_total counter
cloudcache_queries_total 3000
# HELP cloudcache_response_seconds Response time over served queries
# TYPE cloudcache_response_seconds summary
cloudcache_response_seconds{quantile="0.5"} 0.125
cloudcache_response_seconds{quantile="0.99"} 2.5
cloudcache_response_seconds_sum 410.75
cloudcache_response_seconds_count 2990
# HELP cloudcache_tenant_queries_total Per-tenant queries
# TYPE cloudcache_tenant_queries_total counter
cloudcache_tenant_queries_total{tenant="0"} 1500
cloudcache_tenant_queries_total{tenant="1",quantile="esc\\"aped"} 1500
"""


def self_test() -> int:
    """Planted cases: the good body, then one body per defect class."""
    cases = [
        ("valid body", GOOD, 0),
        ("empty body", "\n", 1),
        (
            "sample outside family",
            "# TYPE cloudcache_a counter\ncloudcache_b 1\n",
            1,
        ),
        (
            # The rejected TYPE line leaves no declared family, so the
            # sample is orphaned and no cloudcache_ family registers.
            "bad type",
            "# TYPE cloudcache_a histogram\ncloudcache_a 1\n",
            3,
        ),
        (
            "non-numeric value",
            "# TYPE cloudcache_a counter\ncloudcache_a NaNa\n",
            1,
        ),
        (
            "unescaped quote in label",
            '# TYPE cloudcache_a counter\ncloudcache_a{l="x"y"} 1\n',
            1,
        ),
        (
            "missing final newline",
            "# TYPE cloudcache_a counter\ncloudcache_a 1",
            1,
        ),
    ]
    for name, body, expected in cases:
        got = len(check_text(body))
        if got != expected:
            print(
                f"self-test FAILED: {name}: expected {expected} "
                f"problem(s), got {got}"
            )
            return 1
    print(f"self-test OK ({len(cases)} planted cases)")
    return 0


def main() -> int:
    if "--self-test" in sys.argv[1:]:
        return self_test()
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    if len(args) != 1:
        print("usage: check_metrics.py <exposition-file|-> | --self-test")
        return 2
    if args[0] == "-":
        text = sys.stdin.read()
    else:
        with open(args[0], encoding="utf-8") as handle:
            text = handle.read()
    problems = check_text(text)
    for problem in problems:
        print(problem)
    if not problems:
        print(f"exposition OK ({len(text.splitlines())} lines)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
