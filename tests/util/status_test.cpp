#include "src/util/status.h"

#include <gtest/gtest.h>

namespace cloudcache {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  const Status s = Status::NotFound("table 'x'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "table 'x'");
  EXPECT_EQ(s.ToString(), "NotFound: table 'x'");
}

TEST(StatusTest, AllFactoriesMapToTheirCode) {
  EXPECT_EQ(Status::InvalidArgument("").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::IoError("").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok = 7;
  Result<int> bad = Status::Internal("x");
  EXPECT_EQ(ok.value_or(9), 7);
  EXPECT_EQ(bad.value_or(9), 9);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Status FailsThenPropagates(bool fail) {
  CLOUDCACHE_RETURN_IF_ERROR(fail ? Status::IoError("inner")
                                  : Status::OK());
  return Status::AlreadyExists("outer");
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsThenPropagates(true).code(), StatusCode::kIoError);
  EXPECT_EQ(FailsThenPropagates(false).code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace cloudcache
