#include "src/sim/simulator.h"

#include <cmath>
#include <string>
#include <utility>

#include "src/persist/metrics_io.h"
#include "src/util/logging.h"

namespace cloudcache {

Simulator::Simulator(const Catalog* catalog, Scheme* scheme,
                     WorkloadGenerator* workload, SimulatorOptions options)
    : catalog_(catalog),
      scheme_(scheme),
      workload_(workload),
      options_(options),
      metered_model_(catalog, &options_.metered_prices) {}

Simulator::Simulator(const Catalog* catalog, Scheme* scheme,
                     std::vector<WorkloadGenerator*> workloads,
                     SimulatorOptions options)
    : catalog_(catalog),
      scheme_(scheme),
      workload_(nullptr),
      tenant_workloads_(std::move(workloads)),
      options_(options),
      metered_model_(catalog, &options_.metered_prices) {
  CLOUDCACHE_CHECK(!tenant_workloads_.empty());
  for (WorkloadGenerator* generator : tenant_workloads_) {
    CLOUDCACHE_CHECK(generator != nullptr);
  }
}

void Simulator::MeterRent(SimTime now, SimMetrics* metrics) {
  const double dt = now - last_meter_time_;
  if (dt <= 0) return;
  last_meter_time_ = now;
  const PriceList& p = options_.metered_prices;

  // Rent is metered in double dollars: per-interval amounts on small
  // configurations can be far below one micro-dollar, and rounding each
  // interval through Money would silently zero them out. The quantities
  // come through the scheme's cluster-aware totals, so a multi-node
  // scheme pays for every node it operates; single-node schemes report
  // their one cache and the arithmetic is exactly the pre-cluster path.
  const double disk_dollars =
      static_cast<double>(scheme_->TotalResidentBytes()) * dt *
      p.disk_byte_second_dollars;
  double reservation_dollars =
      static_cast<double>(scheme_->TotalExtraCpuNodes()) * dt *
      p.cpu_second_dollars * p.cpu_reserve_fraction;
  // Rented cluster nodes (beyond the always-on coordinator) bill at the
  // reservation rate scaled by the cluster's rent multiplier.
  const uint32_t rented = scheme_->RentedNodes();
  if (rented > 0) {
    const double node_rent_dollars =
        static_cast<double>(rented) * dt * p.cpu_second_dollars *
        p.cpu_reserve_fraction * options_.node_rent_multiplier;
    metrics->cluster.node_rent_dollars += node_rent_dollars;
    reservation_dollars += node_rent_dollars;
  }
  metrics->operating_cost.disk_dollars += disk_dollars;
  metrics->operating_cost.cpu_dollars += reservation_dollars;
  // The account charge accumulates fractional micro-dollars and releases
  // them once they round to something chargeable.
  pending_rent_dollars_ += disk_dollars + reservation_dollars;
  const Money charge = Money::FromDollars(pending_rent_dollars_);
  if (!charge.IsZero()) {
    pending_rent_dollars_ -= charge.ToDollars();
    scheme_->ChargeExpenditure(charge, now);
  }
}

void Simulator::FlushResidualRent() {
  if (pending_rent_dollars_ <= 0) return;
  // Round up: the cloud never forgives a fraction it already metered. The
  // overcharge is bounded by one micro-dollar per run, in the account's
  // favor, and it closes the books — final_credit now reflects every
  // dollar the operating-cost breakdown counted.
  const Money charge = Money::FromMicros(static_cast<int64_t>(
      std::ceil(pending_rent_dollars_ * 1e6)));
  pending_rent_dollars_ = 0;
  if (!charge.IsZero()) scheme_->ChargeExpenditure(charge, last_meter_time_);
}

void Simulator::MeterQuery(const Query& query, const ServedQuery& served,
                           SimTime now, SimMetrics* metrics,
                           TenantMetrics* tenant) {
  const PriceList& p = options_.metered_prices;
  ResourceBreakdown bill;
  Money charged;

  if (served.served) {
    // Re-price the executed plan's raw resource usage at metered rates.
    // The estimate stored in `served` was computed under the scheme's own
    // price list, but its physical quantities (seconds, ops, bytes) are
    // price-independent.
    const ExecutionEstimate metered =
        metered_model_.EstimateExecution(query, served.spec);
    bill.cpu_dollars += p.CpuCost(metered.cpu_seconds).ToDollars();
    bill.io_dollars += p.IoCost(metered.io_ops).ToDollars();
    bill.network_dollars += p.NetworkCost(metered.wan_bytes).ToDollars();
    charged += p.CpuCost(metered.cpu_seconds) + p.IoCost(metered.io_ops) +
               p.NetworkCost(metered.wan_bytes);
    metrics->wan_bytes += metered.wan_bytes;
    if (tenant != nullptr) tenant->wan_bytes += metered.wan_bytes;
  }

  // Builds triggered by this query.
  const BuildUsage& usage = served.build_usage;
  if (usage.cpu_seconds > 0 || usage.wan_bytes > 0 || usage.io_ops > 0) {
    bill.cpu_dollars += p.CpuCost(usage.cpu_seconds).ToDollars();
    bill.network_dollars += p.NetworkCost(usage.wan_bytes).ToDollars();
    bill.io_dollars += p.IoCost(usage.io_ops).ToDollars();
    metrics->wan_bytes += usage.wan_bytes;
    if (tenant != nullptr) tenant->wan_bytes += usage.wan_bytes;
    // Build spending was already withdrawn from the scheme's account as an
    // investment (economy schemes), so it is not re-charged there; it is
    // still part of the metered operating cost.
  }
  metrics->operating_cost += bill;
  if (tenant != nullptr) tenant->operating_cost += bill;
  if (!charged.IsZero()) scheme_->ChargeExpenditure(charged, now);
}

ServedQuery Simulator::ProcessQuery(const Query& query, uint64_t i,
                                    SimMetrics* metrics,
                                    TenantMetrics* tenant) {
  const SimTime now = query.arrival_time;

  MeterRent(now, metrics);
  ServedQuery served = scheme_->OnQuery(query, now);
  MeterQuery(query, served, now, metrics, tenant);

  AccountOutcome(served, metrics);
  if (tenant != nullptr) AccountOutcome(served, tenant);

  if (options_.timeline_stride != 0 &&
      (i % options_.timeline_stride == 0 ||
       i + 1 == options_.num_queries)) {
    metrics->cost_over_time.Add(now, metrics->operating_cost.Total());
    metrics->credit_over_time.Add(now, scheme_->credit().ToDollars());
  }
  return served;
}

void Simulator::ExternalBegin() {
  if (restored_) {
    // Adopt the interrupted run's accumulators, exactly as RunChecked
    // does; last_meter_time_/pending_rent_dollars_ were restored already.
    external_metrics_ = std::move(restored_metrics_);
    external_processed_ = start_index_;
    return;
  }
  external_metrics_.scheme_name = scheme_->name();
  external_processed_ = 0;
  if (tenant_workloads_.empty()) {
    // DriveSingleStream's fresh-start init, verbatim.
    last_meter_time_ = workload_->PeekNextArrival();
    return;
  }
  // DriveMultiTenant's fresh-start init: tenant slices plus the rent
  // meter's origin at the earliest peeked arrival (what the seeded event
  // queue's Top().time is — ties share the timestamp, so the tie-break
  // cannot change the value).
  external_metrics_.tenants.resize(tenant_workloads_.size());
  for (size_t t = 0; t < external_metrics_.tenants.size(); ++t) {
    external_metrics_.tenants[t].tenant_id = static_cast<uint32_t>(t);
  }
  SimTime first = tenant_workloads_[0]->PeekNextArrival();
  for (size_t t = 1; t < tenant_workloads_.size(); ++t) {
    const SimTime peek = tenant_workloads_[t]->PeekNextArrival();
    if (peek < first) first = peek;
  }
  last_meter_time_ = first;
}

ServedQuery Simulator::ExternalServe(const Query& query) {
  TenantMetrics* tenant = nullptr;
  if (!tenant_workloads_.empty()) {
    CLOUDCACHE_CHECK_LT(static_cast<size_t>(query.tenant_id),
                        external_metrics_.tenants.size());
    tenant = &external_metrics_.tenants[query.tenant_id];
  }
  ServedQuery served =
      ProcessQuery(query, external_processed_, &external_metrics_, tenant);
  ++external_processed_;
  return served;
}

Status Simulator::ExternalCheckpoint() const {
  if (options_.checkpoint.path.empty()) {
    return Status::InvalidArgument(
        "external checkpoint requires a snapshot path");
  }
  if (external_processed_ >= options_.num_queries) {
    return Status::FailedPrecondition(
        "the externally driven run is complete; a completed run is never "
        "checkpointed (nothing left to resume)");
  }
  return WriteSnapshot(external_processed_, external_metrics_);
}

SimMetrics Simulator::Run() {
  Result<SimMetrics> result = RunChecked();
  CLOUDCACHE_CHECK(result.ok());
  return std::move(result).value();
}

Result<SimMetrics> Simulator::RunChecked() {
  SimMetrics metrics;
  if (restored_) {
    // Continue the interrupted run's accumulators; the drivers skip their
    // fresh-start initialization below.
    metrics = std::move(restored_metrics_);
  }
  const Status driven = tenant_workloads_.empty()
                            ? DriveSingleStream(&metrics)
                            : DriveMultiTenant(&metrics);
  CLOUDCACHE_RETURN_IF_ERROR(driven);
  // Cluster shape, if the scheme operates one (no-op default leaves the
  // classic single-node runs without a cluster footprint). The simulator
  // already accumulated cluster.node_rent_dollars while metering.
  scheme_->DescribeCluster(&metrics.cluster);
  return metrics;
}

Status Simulator::MaybeCheckpointAndCrash(uint64_t processed,
                                          const SimMetrics& metrics) {
  const CheckpointOptions& cp = options_.checkpoint;
  // A completed run never checkpoints or crashes at its final boundary:
  // there is nothing left to resume.
  if (processed >= options_.num_queries) return Status::OK();
  if (cp.every > 0 && processed % cp.every == 0) {
    CLOUDCACHE_RETURN_IF_ERROR(WriteSnapshot(processed, metrics));
  }
  if (cp.crash_after > 0 && processed >= cp.crash_after) {
    return Status::ResourceExhausted(
        "crash injection stopped the run after " +
        std::to_string(processed) + " queries, before finalization");
  }
  return Status::OK();
}

Status Simulator::WriteSnapshot(uint64_t processed,
                                const SimMetrics& metrics) const {
  const CheckpointOptions& cp = options_.checkpoint;
  persist::SnapshotWriter writer(cp.config_hash);
  persist::Encoder* meta = writer.AddSection("meta");
  meta->PutU8(tenant_workloads_.empty() ? kDriverModeSingleStream
                                        : kDriverModeMultiTenant);
  meta->PutU64(processed);
  meta->PutU64(options_.num_queries);
  meta->PutString(scheme_->name());
  persist::Encoder* driver = writer.AddSection("driver");
  driver->PutDouble(last_meter_time_);
  driver->PutDouble(pending_rent_dollars_);
  persist::Encoder* workload = writer.AddSection("workload");
  if (tenant_workloads_.empty()) {
    workload->PutU64(1);
    workload_->SaveState(workload);
  } else {
    workload->PutU64(tenant_workloads_.size());
    for (const WorkloadGenerator* generator : tenant_workloads_) {
      generator->SaveState(workload);
    }
  }
  scheme_->SaveState(writer.AddSection("scheme"));
  persist::SaveSimMetrics(metrics, writer.AddSection("metrics"));
  return writer.WriteToFile(cp.path);
}

Status Simulator::RestoreFrom(const persist::SnapshotReader& reader) {
  CLOUDCACHE_RETURN_IF_ERROR(
      reader.ExpectConfigHash(options_.checkpoint.config_hash));
  if (!scheme_->SupportsCheckpoint()) {
    return Status::FailedPrecondition(
        "scheme does not support checkpoint/restore");
  }

  Result<persist::Decoder> meta = reader.Section("meta");
  CLOUDCACHE_RETURN_IF_ERROR(meta.status());
  uint8_t mode = 0;
  uint64_t processed = 0;
  uint64_t total = 0;
  std::string scheme_name;
  CLOUDCACHE_RETURN_IF_ERROR(meta->ReadU8(&mode));
  CLOUDCACHE_RETURN_IF_ERROR(meta->ReadU64(&processed));
  CLOUDCACHE_RETURN_IF_ERROR(meta->ReadU64(&total));
  CLOUDCACHE_RETURN_IF_ERROR(meta->ReadString(&scheme_name));
  CLOUDCACHE_RETURN_IF_ERROR(meta->ExpectEnd());
  const uint8_t expected_mode = tenant_workloads_.empty()
                                    ? kDriverModeSingleStream
                                    : kDriverModeMultiTenant;
  if (mode != expected_mode) {
    return Status::FailedPrecondition(
        "snapshot was written by driver mode " + std::to_string(mode) +
        " but this run uses mode " + std::to_string(expected_mode) +
        " (check --tenants and --threads against the checkpointed run)");
  }
  if (total != options_.num_queries) {
    return Status::FailedPrecondition(
        "snapshot run length " + std::to_string(total) +
        " does not match this run's " +
        std::to_string(options_.num_queries));
  }
  if (processed >= options_.num_queries) {
    return Status::FailedPrecondition(
        "snapshot claims more processed queries than the run length");
  }
  if (scheme_name != scheme_->name()) {
    return Status::FailedPrecondition(
        "snapshot was taken under scheme '" + scheme_name +
        "' but this run drives '" + scheme_->name() + "'");
  }

  Result<persist::Decoder> driver = reader.Section("driver");
  CLOUDCACHE_RETURN_IF_ERROR(driver.status());
  CLOUDCACHE_RETURN_IF_ERROR(driver->ReadDouble(&last_meter_time_));
  CLOUDCACHE_RETURN_IF_ERROR(driver->ReadDouble(&pending_rent_dollars_));
  CLOUDCACHE_RETURN_IF_ERROR(driver->ExpectEnd());

  Result<persist::Decoder> workload = reader.Section("workload");
  CLOUDCACHE_RETURN_IF_ERROR(workload.status());
  uint64_t generator_count = 0;
  CLOUDCACHE_RETURN_IF_ERROR(workload->ReadLength(&generator_count));
  const uint64_t expected_generators =
      tenant_workloads_.empty() ? 1 : tenant_workloads_.size();
  if (generator_count != expected_generators) {
    return Status::FailedPrecondition(
        "snapshot has " + std::to_string(generator_count) +
        " workload streams but this run has " +
        std::to_string(expected_generators));
  }
  if (tenant_workloads_.empty()) {
    CLOUDCACHE_RETURN_IF_ERROR(workload_->RestoreState(&workload.value()));
  } else {
    for (WorkloadGenerator* generator : tenant_workloads_) {
      CLOUDCACHE_RETURN_IF_ERROR(generator->RestoreState(&workload.value()));
    }
  }
  CLOUDCACHE_RETURN_IF_ERROR(workload->ExpectEnd());

  Result<persist::Decoder> scheme = reader.Section("scheme");
  CLOUDCACHE_RETURN_IF_ERROR(scheme.status());
  CLOUDCACHE_RETURN_IF_ERROR(scheme_->RestoreState(&scheme.value()));
  CLOUDCACHE_RETURN_IF_ERROR(scheme->ExpectEnd());

  Result<persist::Decoder> metrics = reader.Section("metrics");
  CLOUDCACHE_RETURN_IF_ERROR(metrics.status());
  restored_metrics_ = SimMetrics();
  CLOUDCACHE_RETURN_IF_ERROR(
      persist::RestoreSimMetrics(&metrics.value(), &restored_metrics_));
  CLOUDCACHE_RETURN_IF_ERROR(metrics->ExpectEnd());
  if (!tenant_workloads_.empty() &&
      restored_metrics_.tenants.size() != tenant_workloads_.size()) {
    return Status::FailedPrecondition(
        "snapshot metrics carry " +
        std::to_string(restored_metrics_.tenants.size()) +
        " tenant slices but this run has " +
        std::to_string(tenant_workloads_.size()));
  }

  start_index_ = processed;
  restored_ = true;
  return Status::OK();
}

Status Simulator::DriveSingleStream(SimMetrics* metrics) {
  if (!restored_) {
    metrics->scheme_name = scheme_->name();
    last_meter_time_ = workload_->PeekNextArrival();
  }

  // Single-stream discipline: the paper serves queries one at a time in
  // arrival order, so the generator IS the schedule and the loop needs no
  // event queue — queries are processed directly as they are drawn. The
  // multi-tenant path below is the queued generalization.
  for (uint64_t i = start_index_; i < options_.num_queries; ++i) {
    const Query query = workload_->Next();
    ProcessQuery(query, i, metrics, nullptr);
    CLOUDCACHE_RETURN_IF_ERROR(MaybeCheckpointAndCrash(i + 1, *metrics));
  }
  FlushResidualRent();

  metrics->final_credit = scheme_->credit();
  metrics->final_resident_bytes = scheme_->TotalResidentBytes();
  metrics->final_extra_nodes = scheme_->TotalExtraCpuNodes();
  return Status::OK();
}

Status Simulator::DriveMultiTenant(SimMetrics* metrics) {
  if (!restored_) {
    metrics->scheme_name = scheme_->name();
    metrics->tenants.resize(tenant_workloads_.size());
    for (size_t t = 0; t < metrics->tenants.size(); ++t) {
      metrics->tenants[t].tenant_id = static_cast<uint32_t>(t);
    }
  }

  // Seed the queue with every tenant's first arrival. From here on the
  // queue always holds exactly one event per tenant — its next arrival —
  // so a pop picks the globally earliest query, with equal timestamps
  // resolved in tenant order by SimEvent::tie regardless of the order the
  // events were pushed in. The merged schedule is therefore a pure
  // function of the tenant generators, never of heap internals.
  EventQueue queue;
  for (size_t t = 0; t < tenant_workloads_.size(); ++t) {
    SimEvent event;
    event.time = tenant_workloads_[t]->PeekNextArrival();
    event.kind = SimEvent::Kind::kArrival;
    event.payload = t;
    event.tie = static_cast<uint32_t>(t);
    queue.Push(event);
  }
  // The queue is rebuilt from the (possibly restored) generators' peeked
  // arrivals either way; only the rent meter's origin is fresh-run state.
  if (!restored_) last_meter_time_ = queue.Top().time;

  for (uint64_t i = start_index_; i < options_.num_queries; ++i) {
    const SimEvent event = queue.Pop();
    const size_t t = static_cast<size_t>(event.payload);
    WorkloadGenerator* generator = tenant_workloads_[t];
    const Query query = generator->Next();
    // The event was scheduled at the generator's peeked arrival; drawing
    // the query must not move it.
    CLOUDCACHE_CHECK(query.arrival_time == event.time);

    SimEvent next;
    next.time = generator->PeekNextArrival();
    next.kind = SimEvent::Kind::kArrival;
    next.payload = t;
    next.tie = static_cast<uint32_t>(t);
    queue.Push(next);

    ProcessQuery(query, i, metrics, &metrics->tenants[t]);
    CLOUDCACHE_RETURN_IF_ERROR(MaybeCheckpointAndCrash(i + 1, *metrics));
  }
  FlushResidualRent();

  metrics->final_credit = scheme_->credit();
  metrics->final_resident_bytes = scheme_->TotalResidentBytes();
  metrics->final_extra_nodes = scheme_->TotalExtraCpuNodes();
  for (size_t t = 0; t < metrics->tenants.size(); ++t) {
    metrics->tenants[t].final_regret =
        scheme_->TenantRegret(static_cast<uint32_t>(t));
  }
  metrics->fairness = ComputeFairness(metrics->tenants);
  return Status::OK();
}

}  // namespace cloudcache
