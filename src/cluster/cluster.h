#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/baseline/scheme.h"
#include "src/cluster/elasticity.h"
#include "src/cluster/metrics.h"
#include "src/cluster/placement.h"
#include "src/cost/price_list.h"

namespace cloudcache {

/// Cluster shape of an experiment: how many cache nodes share the
/// workload, and whether the economy may resize the fleet.
struct ClusterOptions {
  /// Initial (and, when !elastic, fixed) cache nodes. 1 = the paper's
  /// single node, on exactly the pre-cluster code path (unless
  /// force_cluster_path below).
  uint32_t nodes = 1;
  /// Let the ElasticityController rent/release nodes at run time.
  bool elastic = false;
  /// Rent of one cluster node beyond the always-on coordinator, as a
  /// multiple of the node-reservation rate (cpu_second_dollars x
  /// cpu_reserve_fraction). Applies to both the metered bill and the
  /// controller's decision arithmetic.
  double node_rent_multiplier = 1.0;
  /// Structures last used within this many simulated seconds of a
  /// scale-in survive it: they migrate to the warmest surviving node
  /// (built there, paid from that node's account). 0 migrates nothing.
  double migration_recency_seconds = 600.0;
  /// Force the cluster path even for nodes == 1, elastic off. A
  /// one-node cluster routes every query to its only node, so metrics
  /// must be bit-identical either way — this knob exists so tests (and
  /// bisections) can pin that equivalence, mirroring
  /// TenancyOptions::force_event_path.
  bool force_cluster_path = false;
  /// Scale-out/in policy knobs.
  ElasticityOptions elasticity;
};

/// N cache nodes behind one Scheme interface: a deterministic cost-aware
/// PlacementRouter picks the serving node per query, each node runs its
/// own economy (built by the factory; per-node economies share the tenant
/// ledgers in the sense that TenantRegret sums every node's attribution),
/// and an ElasticityController rents a new node when sustained
/// unmonetized regret projected over the amortization horizon exceeds a
/// node's rent — and releases the coldest node when its resident
/// structures no longer pay their keep, migrating still-warm survivors.
///
/// Determinism: routing is a pure function of (query, residencies), the
/// controller acts on query-count windows, node ordinals and seeds derive
/// from MixSeed — a cluster run is a pure function of its configuration,
/// bit-identical across repeats and sweep thread counts. Each node keeps
/// its own CacheState and therefore its own residency epoch; every
/// residency mutation — including scale-in migration, which goes through
/// AdoptStructure/ForceBuild — bumps the owning node's epoch, so each
/// node's plan-skeleton cache stays a pure memoization under churn.
class ClusterScheme : public Scheme {
 public:
  /// Builds the scheme for node `ordinal`. Ordinal 0 must be configured
  /// exactly like the single-node run (that is what makes the one-node
  /// cluster bit-identical to the classic path); rented nodes get fresh
  /// ordinals — never reused — and should derive their seeds from the
  /// ordinal so a rented node's streams are a pure function of the
  /// configuration.
  using NodeFactory = std::function<std::unique_ptr<Scheme>(uint32_t)>;

  ClusterScheme(const Catalog* catalog, const PriceList* decision_prices,
                ClusterOptions options, NodeFactory factory);

  const std::string& name() const override { return name_; }
  ServedQuery OnQuery(const Query& query, SimTime now) override;
  /// The coordinator's cache (interface anchor; metering reads the
  /// Total* sums below).
  const CacheState& cache() const override {
    return nodes_.front().scheme->cache();
  }
  Money credit() const override;
  Money TenantRegret(uint32_t tenant) const override;
  /// Bills the node that served the most recent query (the coordinator
  /// before any query): per-query charges land where the revenue landed,
  /// and shared rent spreads across nodes in proportion to traffic.
  void ChargeExpenditure(Money amount, SimTime now) override;

  uint64_t TotalResidentBytes() const override;
  uint32_t TotalExtraCpuNodes() const override;
  uint32_t RentedNodes() const override {
    return static_cast<uint32_t>(nodes_.size()) - 1;
  }
  Money StandingRegret() const override;
  void DescribeCluster(ClusterMetrics* out) const override;

  /// Forwards the tracer to every node, each stamped with its own
  /// ordinal (the `node_ordinal` argument is ignored — a cluster's nodes
  /// are not interchangeable); nodes rented later inherit it. The cluster
  /// itself emits node_rent / node_release / migrate elasticity events.
  void SetEventTracer(obs::EventTracer* tracer,
                      uint32_t node_ordinal) override;

  size_t num_nodes() const { return nodes_.size(); }
  const Scheme& node(size_t index) const { return *nodes_[index].scheme; }
  /// Mutable node access for tests and warm-start setups (pre-seeding a
  /// node's cache via AdoptStructure before driving queries).
  Scheme& mutable_node(size_t index) { return *nodes_[index].scheme; }
  const ClusterOptions& options() const { return options_; }

  // --- Windowed driver hooks (ParallelNodeSimulator,
  // src/sim/node_parallel.h). The driver routes a whole window of queries
  // up front with RouteQuery — nothing has served yet, so every route sees
  // the window-start residencies — then runs each node's slice through
  // ServeOnNode concurrently (a slice touches only its own Node entry and
  // scheme), and closes the window with EndWindow, the only place
  // cluster-global state (query counter, arrival bounds, elasticity)
  // moves. OnQuery composes exactly these pieces serially, so the two
  // paths share every line of per-query behavior.

  /// Routes one query against the current node residencies without
  /// serving it. Non-const only for the router's reused score buffer.
  size_t RouteQuery(const Query& query);

  /// Serves `query` on node `index` and books the per-node traffic
  /// counters. Safe to call concurrently for DIFFERENT indices: it
  /// touches nothing outside nodes_[index].
  ServedQuery ServeOnNode(size_t index, const Query& query, SimTime now);

  /// What a window close did to the fleet.
  struct WindowEnd {
    ElasticDecision decision = ElasticDecision::kHold;
    /// Pre-release index of the released node (valid for kRelease).
    size_t released_index = 0;
    /// Post-release index of the heir that absorbed the released node's
    /// credit and warm structures (valid for kRelease).
    size_t heir_index = 0;
  };

  /// Closes one driver window: advances the global query counter and
  /// arrival bounds, then — when the cluster is elastic and the window
  /// was a full check interval — runs the elasticity controller at
  /// `window_close`, exactly where the serial path would have run it.
  WindowEnd EndWindow(SimTime window_close, SimTime first_arrival,
                      SimTime last_arrival, uint64_t window_queries);

  /// Checkpoint support. The fleet itself is run state: restore tears
  /// down the constructor-built nodes and rebuilds each saved node through
  /// the factory from its saved ordinal (ordinals fully determine a
  /// node's configuration and seeds), then restores each node's scheme
  /// state, traffic counters, and the controller/window bookkeeping.
  bool SupportsCheckpoint() const override { return true; }
  void SaveState(persist::Encoder* enc) const override;
  Status RestoreState(persist::Decoder* dec) override;

 private:
  struct Node {
    uint32_t ordinal = 0;
    std::unique_ptr<Scheme> scheme;
    SimTime rented_at = 0;
    // Routed-traffic accounting (lifetime and current-window).
    uint64_t queries = 0;
    uint64_t served = 0;
    uint64_t served_in_cache = 0;
    uint64_t window_queries = 0;
    Money revenue;
    Money profit;
  };

  /// Runs the controller at window boundaries and applies its action,
  /// reporting what moved (the serial OnQuery path ignores the report).
  WindowEnd MaybeScale(SimTime now);
  void RentNode(SimTime now);
  /// Releases node `index`, returning the post-release index of its heir.
  size_t ReleaseNode(size_t index, SimTime now);
  /// Index of the surviving node (excluding `releasing`) with the most
  /// lifetime traffic — the migration destination.
  size_t WarmestSurvivor(size_t releasing) const;

  const Catalog* catalog_;
  const PriceList* decision_prices_;
  ClusterOptions options_;
  NodeFactory factory_;
  PlacementRouter router_;
  ElasticityController controller_;
  std::vector<Node> nodes_;
  uint32_t next_ordinal_ = 0;
  /// Reused per-query residency view handed to the router.
  std::vector<const CacheState*> cache_view_;
  size_t last_served_ = 0;
  uint64_t queries_ = 0;
  /// Arrival-time bounds for the controller's mean-interarrival estimate.
  SimTime first_arrival_ = 0;
  SimTime last_arrival_ = 0;
  bool saw_query_ = false;
  /// Scale-event counters reported through DescribeCluster.
  uint32_t peak_nodes_ = 0;
  uint64_t scale_out_events_ = 0;
  uint64_t scale_in_events_ = 0;
  uint64_t migrations_ = 0;
  uint64_t migration_failures_ = 0;
  /// Structured event trace (null when off) and the last query served on
  /// the serial path — elasticity events fire at window boundaries, so
  /// they are stamped with the query whose arrival closed the window.
  obs::EventTracer* tracer_ = nullptr;
  uint64_t trace_query_ = 0;
  uint32_t trace_tenant_ = 0;
  std::string name_;
};

}  // namespace cloudcache
